// Quantized engine tests: fixed-point requantization edge cases, the int8
// GEMM against a naive reference, calibration observers, batch invariance,
// serialization round trips, analytic error bounds on the zoo models and
// the quantized detection harness end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>

#include "attack/sba.h"
#include "coverage/parameter_coverage.h"
#include "exp/model_zoo.h"
#include "ip/quantized_ip.h"
#include "nn/builder.h"
#include "nn/trainer.h"
#include "quant/observer.h"
#include "quant/qconv.h"
#include "quant/qgemm.h"
#include "quant/qops.h"
#include "quant/quant_model.h"
#include "quant/quantize.h"
#include "tensor/batch.h"
#include "util/error.h"
#include "util/serialize.h"
#include "util/thread_pool.h"
#include "validate/detection.h"

namespace dnnv::quant {
namespace {

using nn::ActivationKind;
using nn::Sequential;

// ---------- Fixed-point requantization ----------

TEST(RequantizeTest, TiesRoundHalfAwayFromZero) {
  // ratio 1/2: acc=1 -> 0.5 -> 1, acc=3 -> 1.5 -> 2 (and mirrored).
  const Requant rq = requant_from_real(0.5);
  EXPECT_EQ(requantize(1, rq), 1);
  EXPECT_EQ(requantize(3, rq), 2);
  EXPECT_EQ(requantize(-1, rq), -1);
  EXPECT_EQ(requantize(-3, rq), -2);
  EXPECT_EQ(requantize(4, rq), 2);  // exact, no tie
}

TEST(RequantizeTest, Int32AccumulatorSaturation) {
  // Unit ratio at the accumulator extremes must clamp to the code range,
  // not wrap.
  const Requant rq = requant_from_real(1.0);
  EXPECT_EQ(requantize(std::numeric_limits<std::int32_t>::max(), rq), kQmax);
  EXPECT_EQ(requantize(std::numeric_limits<std::int32_t>::min(), rq), kQmin);
  EXPECT_EQ(requantize(200, rq), kQmax);
  EXPECT_EQ(requantize(-200, rq), kQmin);
  EXPECT_EQ(requantize(100, rq), 100);
  EXPECT_EQ(requantize(-100, rq), -100);
}

TEST(RequantizeTest, FixedPointMatchesRealArithmetic) {
  // Across magnitudes: the Q31 encoding reproduces round(acc * r) exactly
  // for every in-range result (the mantissa error is < 2^-30 relative).
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const double r = std::exp(rng.uniform(-12.0, 2.0));
    const auto acc = static_cast<std::int32_t>(rng.uniform_int(-100000, 100000));
    const double real = static_cast<double>(acc) * r;
    if (std::fabs(real) > 126.4) continue;  // keep away from the clamp edge
    const double rounded = std::round(std::fabs(real)) *
                           (real < 0 ? -1.0 : 1.0);  // half away from zero
    // Near-tie results can legitimately differ by the mantissa ulp; skip the
    // knife-edge cases.
    if (std::fabs(std::fabs(real) - (std::floor(std::fabs(real)) + 0.5)) < 1e-6) {
      continue;
    }
    EXPECT_EQ(requantize(acc, requant_from_real(r)),
              static_cast<std::int8_t>(rounded))
        << "acc=" << acc << " r=" << r;
  }
}

TEST(RequantizeTest, ZeroRatioAndZeroChannels) {
  EXPECT_EQ(requant_from_real(0.0).multiplier, 0);
  EXPECT_EQ(requantize(12345, requant_from_real(0.0)), 0);
  // Near-dead ratios (below the Q31 range) collapse to the zero encoding
  // instead of throwing — the continuous limit of the amax==0 fallback.
  EXPECT_EQ(requant_from_real(1e-15).multiplier, 0);
  EXPECT_EQ(requantize(std::numeric_limits<std::int32_t>::max(),
                       requant_from_real(1e-15)),
            0);
  // All-zero channels quantize to scale 1 with exact zero codes.
  EXPECT_EQ(choose_scale(0.0f), 1.0f);
  const float weights[6] = {0.0f, 0.0f, 0.0f, 1.0f, -2.0f, 0.5f};
  const auto scales = weight_scales(weights, 2, 3, Granularity::kPerChannel);
  ASSERT_EQ(scales.size(), 2u);
  EXPECT_EQ(scales[0], 1.0f);
  EXPECT_EQ(quantize_value(0.0f, scales[0]), 0);
  EXPECT_FLOAT_EQ(scales[1], 2.0f / 127.0f);
}

TEST(QuantizeValueTest, TiesAndClamping) {
  EXPECT_EQ(quantize_value(0.5f, 1.0f), 1);
  EXPECT_EQ(quantize_value(-0.5f, 1.0f), -1);
  EXPECT_EQ(quantize_value(1000.0f, 1.0f), kQmax);
  EXPECT_EQ(quantize_value(-1000.0f, 1.0f), kQmin);
}

// ---------- int8 GEMM ----------

void naive_qgemm(std::int64_t m, std::int64_t n, std::int64_t k,
                 const std::int8_t* a, const std::int8_t* b, std::int32_t* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<std::int32_t>(a[i * k + p]) *
               static_cast<std::int32_t>(b[p * n + j]);
      }
      c[i * n + j] = acc;
    }
  }
}

std::vector<std::int8_t> random_codes(std::int64_t count, Rng& rng) {
  std::vector<std::int8_t> v(static_cast<std::size_t>(count));
  for (auto& x : v) x = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  return v;
}

TEST(QgemmTest, MatchesNaiveReference) {
  Rng rng(3);
  const std::int64_t shapes[][3] = {{1, 1, 1},   {3, 5, 7},    {8, 32, 64},
                                    {33, 17, 70}, {64, 72, 300}, {130, 48, 9}};
  for (const auto& s : shapes) {
    const auto m = s[0], n = s[1], k = s[2];
    const auto a = random_codes(m * k, rng);
    const auto b = random_codes(k * n, rng);
    std::vector<std::int32_t> expected(static_cast<std::size_t>(m * n));
    std::vector<std::int32_t> actual(static_cast<std::size_t>(m * n), -1);
    naive_qgemm(m, n, k, a.data(), b.data(), expected.data());
    qgemm(m, n, k, a.data(), b.data(), actual.data());
    EXPECT_EQ(expected, actual) << "m=" << m << " n=" << n << " k=" << k;
  }
}

TEST(QgemmTest, ExtremeCodesNoOverflow) {
  // All-(-127) times all-(+127) at a K large enough to stress the unsigned
  // offset headroom.
  const std::int64_t m = 4, n = 4, k = 4096;
  std::vector<std::int8_t> a(static_cast<std::size_t>(m * k), -127);
  std::vector<std::int8_t> b(static_cast<std::size_t>(k * n), 127);
  std::vector<std::int32_t> c(static_cast<std::size_t>(m * n));
  qgemm(m, n, k, a.data(), b.data(), c.data());
  for (const auto v : c) EXPECT_EQ(v, -127 * 127 * k);
}

TEST(QgemmTest, RejectsOversizedK) {
  std::vector<std::int8_t> a(1), b(1);
  std::vector<std::int32_t> c(1);
  EXPECT_THROW(qgemm(1, 1, 70000, a.data(), b.data(), c.data()), Error);
}

std::vector<QGemmKernel> compiled_kernels() {
  std::vector<QGemmKernel> kernels = {QGemmKernel::kScalar};
  if (qgemm_vnni_available()) kernels.push_back(QGemmKernel::kVnni);
  return kernels;
}

/// Restores the process-wide kernel/path selectors on scope exit so a
/// failing EXPECT cannot leak a forced kernel into later tests.
struct EngineStateGuard {
  ~EngineStateGuard() {
    set_qgemm_kernel(QGemmKernel::kAuto);
    set_qconv_path(QConvPath::kFused);
  }
};

TEST(QgemmTest, TiledParallelMatchesSerialAcrossPoolWidths) {
  EngineStateGuard guard;
  Rng rng(17);
  // Big enough to clear the ~1M-MAC parallel gate with several macro tiles.
  const std::int64_t m = 130, n = 600, k = 80;
  const auto a = random_codes(m * k, rng);
  const auto b = random_codes(k * n, rng);
  std::vector<std::int32_t> serial(static_cast<std::size_t>(m * n));
  std::vector<std::int32_t> tiled(static_cast<std::size_t>(m * n));
  for (const QGemmKernel kernel : compiled_kernels()) {
    set_qgemm_kernel(kernel);
    QGemmOptions serial_opts;
    serial_opts.force_serial = true;
    qgemm(m, n, k, a.data(), b.data(), serial.data(), serial_opts);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                      std::size_t{16}}) {
      ThreadPool pool(threads);
      QGemmOptions opts;
      opts.pool = &pool;
      std::fill(tiled.begin(), tiled.end(), -1);
      qgemm(m, n, k, a.data(), b.data(), tiled.data(), opts);
      EXPECT_EQ(serial, tiled)
          << qgemm_kernel_name() << " threads=" << threads;
    }
  }
}

TEST(QgemmTest, TiledParallelNestedInsideParallelForStaysExact) {
  EngineStateGuard guard;
  Rng rng(23);
  const std::int64_t m = 96, n = 512, k = 64;
  const auto a = random_codes(m * k, rng);
  const auto b = random_codes(k * n, rng);
  std::vector<std::int32_t> serial(static_cast<std::size_t>(m * n));
  QGemmOptions serial_opts;
  serial_opts.force_serial = true;
  qgemm(m, n, k, a.data(), b.data(), serial.data(), serial_opts);

  // The ValidationService shape: lanes run inside pool workers, and each
  // lane's GEMM tiles split across the same pool. Every lane must still
  // produce the bit-exact serial result.
  ThreadPool pool(4);
  constexpr std::size_t kLanes = 8;
  std::vector<std::vector<std::int32_t>> lane_out(
      kLanes, std::vector<std::int32_t>(static_cast<std::size_t>(m * n), -1));
  pool.parallel_for(kLanes, [&](std::size_t lane) {
    QGemmOptions opts;
    opts.pool = &pool;
    qgemm(m, n, k, a.data(), b.data(), lane_out[lane].data(), opts);
  });
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    EXPECT_EQ(serial, lane_out[lane]) << "lane " << lane;
  }
}

// ---------- Fused int8 convolution ----------

/// Direct-convolution ground truth: exact int32 accumulation straight from
/// the definition, no im2col, no GEMM.
void naive_qconv(const QConvShape& s, const std::int8_t* weights,
                 const std::int8_t* image, std::int32_t* acc) {
  const std::int64_t out_h = s.out_h(), out_w = s.out_w();
  for (std::int64_t oc = 0; oc < s.out_channels; ++oc) {
    for (std::int64_t oy = 0; oy < out_h; ++oy) {
      for (std::int64_t ox = 0; ox < out_w; ++ox) {
        std::int32_t sum = 0;
        for (std::int64_t c = 0; c < s.in_channels; ++c) {
          for (std::int64_t ky = 0; ky < s.kernel; ++ky) {
            for (std::int64_t kx = 0; kx < s.kernel; ++kx) {
              const std::int64_t iy = oy * s.stride - s.pad + ky;
              const std::int64_t ix = ox * s.stride - s.pad + kx;
              if (iy < 0 || iy >= s.height || ix < 0 || ix >= s.width) continue;
              const std::int64_t wi =
                  oc * s.fanin() + (c * s.kernel + ky) * s.kernel + kx;
              sum += static_cast<std::int32_t>(weights[wi]) *
                     static_cast<std::int32_t>(
                         image[(c * s.height + iy) * s.width + ix]);
            }
          }
        }
        acc[(oc * out_h + oy) * out_w + ox] = sum;
      }
    }
  }
}

TEST(QConvFusedTest, BitIdenticalToTwoPassAndNaiveAcrossShapesAndKernels) {
  EngineStateGuard guard;
  // Odd planes, stride > 1, asymmetric H/W, padless and padded, 1x1 — the
  // fused packer's fast and general row paths all get hit.
  const QConvShape shapes[] = {
      {1, 7, 9, 3, 3, 1, 1},    // odd "same"-pad plane (contiguous fast path)
      {2, 11, 5, 4, 3, 2, 1},   // stride 2
      {3, 9, 9, 5, 5, 1, 2},    // 5x5 same pad
      {2, 9, 7, 4, 3, 1, 0},    // no pad (out_w != width: general path)
      {4, 6, 10, 8, 2, 2, 0},   // even kernel, stride 2
      {1, 1, 1, 1, 1, 1, 0},    // degenerate 1x1
      {3, 13, 13, 33, 3, 1, 1}, // out_channels past one kMR panel span
  };
  Rng rng(29);
  for (const QConvShape& s : shapes) {
    const std::int64_t m = s.out_channels, n = s.plane(), k = s.fanin();
    const auto weights = random_codes(m * k, rng);
    const auto image = random_codes(s.in_channels * s.height * s.width, rng);
    std::vector<std::int32_t> expected(static_cast<std::size_t>(m * n));
    naive_qconv(s, weights.data(), image.data(), expected.data());

    std::vector<std::int8_t> cols(static_cast<std::size_t>(k * n));
    std::vector<std::int32_t> two_pass(static_cast<std::size_t>(m * n));
    std::vector<std::int32_t> fused(static_cast<std::size_t>(m * n), -1);
    for (const QGemmKernel kernel : compiled_kernels()) {
      set_qgemm_kernel(kernel);
      im2col_s8(image.data(), s.in_channels, s.height, s.width, s.kernel,
                s.kernel, s.stride, s.pad, cols.data());
      qgemm(m, n, k, weights.data(), cols.data(), two_pass.data());

      const PackedConvWeights packed =
          pack_conv_weights(m, k, weights.data());
      const QConvScratchSizes sizes = qconv_scratch_sizes(s);
      std::vector<std::int8_t> b_pack(sizes.b_pack);
      std::vector<std::int32_t> colsum(sizes.colsum);
      std::vector<std::int8_t> rowbuf(sizes.rowbuf);
      qconv2d_fused(s, packed, image.data(), fused.data(),
                    {b_pack.data(), colsum.data(), rowbuf.data()});

      EXPECT_EQ(expected, two_pass)
          << qgemm_kernel_name() << " two-pass vs naive";
      EXPECT_EQ(expected, fused) << qgemm_kernel_name() << " fused vs naive";
    }
  }
}

TEST(QConvFusedTest, RejectsMismatchedWeightPack) {
  EngineStateGuard guard;
  if (!qgemm_vnni_available()) GTEST_SKIP() << "single compiled kernel";
  const QConvShape s{1, 4, 4, 2, 3, 1, 1};
  Rng rng(31);
  const auto weights = random_codes(s.out_channels * s.fanin(), rng);
  set_qgemm_kernel(QGemmKernel::kScalar);
  const PackedConvWeights packed =
      pack_conv_weights(s.out_channels, s.fanin(), weights.data());
  set_qgemm_kernel(QGemmKernel::kVnni);  // pack is now stale
  const auto image = random_codes(s.in_channels * s.height * s.width, rng);
  std::vector<std::int32_t> acc(
      static_cast<std::size_t>(s.out_channels * s.plane()));
  const QConvScratchSizes sizes = qconv_scratch_sizes(s);
  std::vector<std::int8_t> b_pack(sizes.b_pack);
  std::vector<std::int32_t> colsum(sizes.colsum);
  std::vector<std::int8_t> rowbuf(sizes.rowbuf);
  EXPECT_THROW(qconv2d_fused(s, packed, image.data(), acc.data(),
                             {b_pack.data(), colsum.data(), rowbuf.data()}),
               Error);
}

TEST(QConvFusedTest, QuantModelForwardIdenticalAcrossPathsOnZooModels) {
  EngineStateGuard guard;
  // End-to-end: the deployed QuantModel must produce bit-identical logits on
  // both zoo convnets whichever conv path executes, for batch 1 and > 1.
  exp::ZooOptions options;
  options.tiny = true;
  exp::TrainedModel cases[] = {exp::mnist_tanh(options),
                               exp::cifar_relu(options)};
  std::vector<Tensor> pools[] = {exp::digits_train(12).images,
                                 exp::shapes_train(12).images};
  for (std::size_t ci = 0; ci < 2; ++ci) {
    QuantModel qm = QuantModel::quantize(cases[ci].model, pools[ci]);
    for (const std::int64_t batch_size : {std::int64_t{1}, std::int64_t{7}}) {
      std::vector<Tensor> items(pools[ci].begin(),
                                pools[ci].begin() + batch_size);
      const Tensor batch = stack_batch(items);
      set_qconv_path(QConvPath::kFused);
      const Tensor fused = qm.forward(batch);
      set_qconv_path(QConvPath::kTwoPass);
      const Tensor two_pass = qm.forward(batch);
      ASSERT_EQ(fused.numel(), two_pass.numel());
      for (std::int64_t i = 0; i < fused.numel(); ++i) {
        EXPECT_EQ(fused[i], two_pass[i])
            << cases[ci].name << " batch " << batch_size << " logit " << i;
      }
    }
  }
}

// ---------- Observers ----------

TEST(ObserverTest, MinMaxTracksPeak) {
  MinMaxObserver obs;
  const float chunk1[] = {0.5f, -2.0f, 1.0f};
  const float chunk2[] = {-0.25f, 1.5f};
  obs.observe(chunk1, 3);
  obs.observe(chunk2, 2);
  EXPECT_FLOAT_EQ(obs.amax(), 2.0f);
}

TEST(ObserverTest, PercentileIgnoresOutliers) {
  PercentileObserver obs(0.99);
  std::vector<float> values;
  for (int i = 0; i < 1000; ++i) values.push_back(static_cast<float>(i % 10));
  values.push_back(1000.0f);  // lone outlier
  obs.observe(values.data(), static_cast<std::int64_t>(values.size()));
  EXPECT_LT(obs.amax(), 50.0f);
  EXPECT_GE(obs.amax(), 9.0f);

  MinMaxObserver minmax;
  minmax.observe(values.data(), static_cast<std::int64_t>(values.size()));
  EXPECT_FLOAT_EQ(minmax.amax(), 1000.0f);
}

TEST(ObserverTest, PercentileAllZeros) {
  PercentileObserver obs(0.999);
  const float zeros[4] = {0.0f, 0.0f, 0.0f, 0.0f};
  obs.observe(zeros, 4);
  EXPECT_FLOAT_EQ(obs.amax(), 0.0f);
}

// ---------- QuantModel ----------

Sequential trained_mlp(std::uint64_t seed = 5) {
  Rng rng(seed);
  Sequential model = nn::build_mlp(6, {12}, 3, ActivationKind::kReLU, rng);
  Rng data_rng(seed + 1);
  std::vector<Tensor> inputs;
  std::vector<int> labels;
  for (int i = 0; i < 150; ++i) {
    const int label = i % 3;
    Tensor x(Shape{6});
    for (std::int64_t j = 0; j < 6; ++j) {
      x[j] = static_cast<float>(data_rng.normal(j == label * 2 ? 1.0 : 0.0, 0.3));
    }
    inputs.push_back(std::move(x));
    labels.push_back(label);
  }
  nn::TrainConfig config;
  config.epochs = 10;
  config.batch_size = 16;
  nn::fit(model, inputs, labels, config);
  return model;
}

std::vector<Tensor> probe_pool(int count, const Shape& shape,
                               std::uint64_t seed = 3) {
  Rng rng(seed);
  std::vector<Tensor> pool;
  for (int i = 0; i < count; ++i) {
    pool.push_back(Tensor::rand_uniform(shape, rng, -1.0f, 1.0f));
  }
  return pool;
}

TEST(QuantModelTest, BatchSizeInvarianceDense) {
  Sequential model = trained_mlp();
  const auto pool = probe_pool(32, Shape{6});
  QuantModel qm = QuantModel::quantize(model, pool);

  const Tensor batch = stack_batch(pool);
  const Tensor batched = qm.forward(batch);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const Tensor single = qm.forward(stack_batch({pool[i]}));
    for (std::int64_t c = 0; c < single.numel(); ++c) {
      EXPECT_EQ(batched[static_cast<std::int64_t>(i) * single.numel() + c],
                single[c])
          << "item " << i << " logit " << c;  // bit-identical, not just close
    }
  }
}

TEST(QuantModelTest, BatchSizeInvarianceConv) {
  Rng rng(11);
  nn::ConvNetSpec spec;
  spec.in_channels = 1;
  spec.in_height = 12;
  spec.in_width = 12;
  spec.conv_channels = {4, 4};
  spec.dense_units = {16};
  spec.activation = ActivationKind::kTanh;
  Sequential model = nn::build_convnet(spec, rng);
  const auto pool = probe_pool(9, Shape{1, 12, 12}, 13);
  QuantModel qm = QuantModel::quantize(model, pool);

  const Tensor batched = qm.forward(stack_batch(pool));
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const Tensor single = qm.forward(stack_batch({pool[i]}));
    for (std::int64_t c = 0; c < single.numel(); ++c) {
      EXPECT_EQ(batched[static_cast<std::int64_t>(i) * single.numel() + c],
                single[c]);
    }
  }
}

TEST(QuantModelTest, ActivationMasksBatchInvariantAndOnInt8) {
  Sequential model = trained_mlp();
  const auto pool = probe_pool(16, Shape{6});
  QuantModel qm = QuantModel::quantize(model, pool);

  const auto batched = qm.activation_masks_int8(stack_batch(pool));
  ASSERT_EQ(batched.size(), pool.size());
  EXPECT_EQ(batched.front().size(), 12u);  // one bit per hidden LUT unit
  std::size_t any_set = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const auto single = qm.activation_masks_int8(stack_batch({pool[i]}));
    EXPECT_TRUE(batched[i] == single.front()) << "item " << i;
    any_set += batched[i].count();
  }
  EXPECT_GT(any_set, 0u);
}

TEST(QuantModelTest, DequantizedReferenceTargetsExecutedWeights) {
  Sequential model = trained_mlp();
  const auto pool = probe_pool(24, Shape{6});
  QuantModel qm = QuantModel::quantize(model, pool);

  Sequential ref = qm.dequantized_reference();
  // The reference must carry the quantized (not original) weights…
  const auto qviews = qm.param_views();
  auto rviews = ref.param_views();
  ASSERT_EQ(qviews.size(), rviews.size());
  for (std::size_t v = 0; v < qviews.size(); ++v) {
    ASSERT_EQ(qviews[v].size, rviews[v].size);
    for (std::int64_t i = 0; i < qviews[v].size; ++i) {
      const float scale =
          qviews[v].scales[static_cast<std::size_t>(i / qviews[v].per_channel)];
      EXPECT_FLOAT_EQ(rviews[v].data[i], scale * qviews[v].codes[i]);
    }
  }
  // …and feed the coverage engine so masks target the executed int8 model.
  cov::ParameterCoverage coverage(ref);
  const auto mask = coverage.activation_mask(pool.front());
  EXPECT_EQ(mask.size(), static_cast<std::size_t>(ref.param_count()));
  EXPECT_GT(mask.count(), 0u);
}

TEST(QuantModelTest, PerTensorVsPerChannelAgreementWithFloat) {
  Sequential model = trained_mlp();
  const auto pool = probe_pool(40, Shape{6});
  QuantConfig per_tensor;
  per_tensor.weight_granularity = Granularity::kPerTensor;
  QuantModel qt = QuantModel::quantize(model, pool, per_tensor);
  QuantModel qc = QuantModel::quantize(model, pool);  // per-channel default

  const Tensor batch = stack_batch(pool);
  const auto float_labels = model.predict_labels(batch);
  int agree_t = 0, agree_c = 0;
  const auto labels_t = qt.predict_labels(batch);
  const auto labels_c = qc.predict_labels(batch);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    agree_t += labels_t[i] == float_labels[i];
    agree_c += labels_c[i] == float_labels[i];
  }
  EXPECT_GE(agree_t, static_cast<int>(pool.size()) - 6);
  EXPECT_GE(agree_c, static_cast<int>(pool.size()) - 6);
  // Per-channel grids are never coarser than the per-tensor grid.
  EXPECT_LE(qc.logit_error_bound(), qt.logit_error_bound() + 1e-9);
}

TEST(QuantModelTest, NearDeadChannelQuantizesWithoutThrowing) {
  // A hidden unit whose weights are tiny-but-nonzero (weight decay, or an
  // attack zeroing a row) must not abort quantization or the per-trial
  // requantize path — it collapses to a silent channel.
  Sequential model = trained_mlp();
  auto views = model.param_views();
  for (std::int64_t i = 0; i < 6; ++i) views[0].data[i] = 1e-12f;
  const auto pool = probe_pool(16, Shape{6});
  QuantModel qm = QuantModel::quantize(model, pool);
  const Tensor logits = qm.forward(stack_batch(pool));
  EXPECT_EQ(logits.shape()[0], 16);

  QuantModel updated = qm;
  updated.requantize_weights_from(model);  // the detection-trial path
  EXPECT_EQ(updated.predict_labels(stack_batch(pool)),
            qm.predict_labels(stack_batch(pool)));
}

TEST(QuantModelTest, PercentileCalibrationRunsEndToEnd) {
  Sequential model = trained_mlp();
  const auto pool = probe_pool(40, Shape{6});
  QuantConfig config;
  config.calibration = CalibrationMethod::kPercentile;
  config.percentile = 0.995;
  QuantModel qm = QuantModel::quantize(model, pool, config);

  const Tensor batch = stack_batch(pool);
  const auto float_labels = model.predict_labels(batch);
  const auto quant_labels = qm.predict_labels(batch);
  int agree = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    agree += quant_labels[i] == float_labels[i];
  }
  // Percentile clipping trades range for grid resolution; agreement should
  // stay high on a well-separated classifier.
  EXPECT_GE(agree, static_cast<int>(pool.size()) - 8);
}

TEST(QuantModelTest, SerializeRoundTripWithCrcFooter) {
  Sequential model = trained_mlp();
  const auto pool = probe_pool(16, Shape{6});
  QuantModel qm = QuantModel::quantize(model, pool);

  const std::string path = ::testing::TempDir() + "quant_model.dqm8";
  qm.save_file(path);
  QuantModel loaded = QuantModel::load_file(path);
  EXPECT_EQ(loaded.summary(), qm.summary());
  EXPECT_EQ(loaded.num_classes(), qm.num_classes());
  EXPECT_EQ(loaded.param_count(), qm.param_count());

  const Tensor batch = stack_batch(pool);
  EXPECT_EQ(loaded.predict_labels(batch), qm.predict_labels(batch));
  const Tensor a = qm.forward(batch);
  const Tensor b = loaded.forward(batch);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]);

  // A corrupted payload byte must trip the CRC-32 footer.
  auto bytes = read_file(path);
  bytes[bytes.size() / 2] ^= 0x40;
  const std::string bad_path = ::testing::TempDir() + "quant_model_bad.dqm8";
  write_file(bad_path, bytes);
  EXPECT_THROW(QuantModel::load_file(bad_path), Error);
  std::remove(path.c_str());
  std::remove(bad_path.c_str());
}

TEST(QuantModelTest, LogitErrorBoundHoldsOnZooModels) {
  // The satellite cross-check: int8-engine logits stay within the analytic
  // bound of the float reference on both zoo models, per-channel AND
  // per-tensor. Min/max calibration over the evaluation inputs keeps every
  // requant clamp a projection, so the bound is sound by construction.
  exp::ZooOptions options;
  options.tiny = true;
  struct Case {
    exp::TrainedModel trained;
    std::vector<Tensor> pool;
  };
  Case cases[] = {
      {exp::mnist_tanh(options), exp::digits_train(48).images},
      {exp::cifar_relu(options), exp::shapes_train(48).images},
  };
  for (auto& [trained, pool] : cases) {
    for (const Granularity granularity :
         {Granularity::kPerChannel, Granularity::kPerTensor}) {
      QuantConfig config;
      config.weight_granularity = granularity;
      QuantModel qm = QuantModel::quantize(trained.model, pool, config);
      const double bound = qm.logit_error_bound();
      EXPECT_GT(bound, 0.0);
      ASSERT_TRUE(std::isfinite(bound));

      const Tensor batch = stack_batch(pool);
      const Tensor quant_logits = qm.forward(batch);
      const Tensor float_logits = trained.model.forward(batch);
      double max_diff = 0.0;
      for (std::int64_t i = 0; i < quant_logits.numel(); ++i) {
        max_diff = std::max(
            max_diff,
            static_cast<double>(std::fabs(quant_logits[i] - float_logits[i])));
      }
      EXPECT_LE(max_diff, bound)
          << trained.name << " granularity "
          << (granularity == Granularity::kPerChannel ? "per-channel"
                                                      : "per-tensor");
    }
  }
}

TEST(QuantModelTest, RequantizeWeightsFromTracksPerturbedModel) {
  Sequential model = trained_mlp();
  const auto pool = probe_pool(16, Shape{6});
  QuantModel qm = QuantModel::quantize(model, pool);

  Sequential perturbed = model.clone();
  perturbed.set_param(0, perturbed.get_param(0) + 1.5f);
  QuantModel updated = qm;
  updated.requantize_weights_from(perturbed);

  // Codes now reflect the perturbed float weights; re-quantizing from the
  // clean model restores the original behaviour exactly.
  QuantModel fresh = QuantModel::quantize(perturbed, pool);
  // (fresh re-calibrates activations; compare against a same-calibration
  // re-quantization instead)
  QuantModel back = updated;
  back.requantize_weights_from(model);
  const Tensor batch = stack_batch(pool);
  EXPECT_EQ(back.predict_labels(batch), qm.predict_labels(batch));
  const Tensor a = back.forward(batch);
  const Tensor b = qm.forward(batch);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]);
  (void)fresh;
}

// ---------- Quantized detection (end-to-end smoke) ----------

TEST(QuantDetectionTest, RunsEndToEndOnInt8Backend) {
  Sequential model = trained_mlp();
  const auto pool = probe_pool(40, Shape{6});
  QuantModel shipped = QuantModel::quantize(model, pool);

  // Masks computed on the executed int8 model steer the suite order.
  Sequential ref = shipped.dequantized_reference();
  const auto masks = cov::activation_masks(ref, pool);
  std::vector<std::pair<std::size_t, std::size_t>> scored;  // (count, index)
  for (std::size_t i = 0; i < masks.size(); ++i) {
    scored.emplace_back(masks[i].count(), i);
  }
  std::sort(scored.rbegin(), scored.rend());
  std::vector<Tensor> suite_inputs;
  for (std::size_t i = 0; i < 10; ++i) {
    suite_inputs.push_back(pool[scored[i].second]);
  }
  // Golden labels from the int8 artifact itself.
  QuantModel clean = shipped;
  auto suite = validate::TestSuite::from_labels(
      suite_inputs, clean.predict_labels(stack_batch(suite_inputs)));

  validate::DetectionConfig config;
  config.trials = 12;
  config.test_counts = {5, 10};
  const auto outcome = validate::run_detection_quantized(
      model, shipped, suite, attack::SingleBiasAttack(), pool, config);
  EXPECT_GT(outcome.successful_trials, 0);
  ASSERT_EQ(outcome.rate_per_count.size(), 2u);
  for (const double rate : outcome.rate_per_count) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
  EXPECT_GE(outcome.rate_per_count[1], outcome.rate_per_count[0]);

  // Determinism: the integer engine makes reruns bit-identical.
  const auto rerun = validate::run_detection_quantized(
      model, shipped, suite, attack::SingleBiasAttack(), pool, config);
  EXPECT_EQ(rerun.rate_per_count, outcome.rate_per_count);
  EXPECT_EQ(rerun.successful_trials, outcome.successful_trials);
}

// ---------- QuantizedIp backend A/B ----------

TEST(QuantizedIpBackendTest, Int8AndDequantFloatAgreeOnMostInputs) {
  Sequential model = trained_mlp();
  const auto pool = probe_pool(50, Shape{6});
  ip::QuantizedIp quantized(model, Shape{6}, pool);
  EXPECT_EQ(quantized.backend(), ip::QuantBackend::kInt8);

  const auto int8_labels = quantized.predict_all(pool);
  quantized.set_backend(ip::QuantBackend::kDequantFloat);
  const auto float_labels = quantized.predict_all(pool);
  int agree = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    agree += int8_labels[i] == float_labels[i];
  }
  // Both backends run the same dequantized weights; only activation
  // quantization separates them.
  EXPECT_GE(agree, 45);
}

TEST(QuantizedIpBackendTest, FaultInjectionReachesInt8Engine) {
  Sequential model = trained_mlp();
  const auto pool = probe_pool(30, Shape{6});
  ip::QuantizedIp quantized(model, Shape{6}, pool);
  const auto clean = quantized.predict_all(pool);
  for (std::size_t a = 0; a < quantized.memory_size() / 2; ++a) {
    quantized.write_byte(a, 0x7F);
  }
  const auto corrupted = quantized.predict_all(pool);
  int changed = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    changed += clean[i] != corrupted[i];
  }
  EXPECT_GT(changed, 0);
}

}  // namespace
}  // namespace dnnv::quant
