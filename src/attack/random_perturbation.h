// Random Gaussian parameter perturbation (the paper's third fault model).
#ifndef DNNV_ATTACK_RANDOM_PERTURBATION_H_
#define DNNV_ATTACK_RANDOM_PERTURBATION_H_

#include "attack/attack.h"

namespace dnnv::attack {

/// Adds Gaussian noise to a small random subset of parameters — modelling
/// non-adversarial corruption (memory faults, transmission errors). The
/// noise scale is relative to the global parameter standard deviation so the
/// perturbation is comparable across layers and models.
class RandomPerturbation : public Attack {
 public:
  struct Options {
    /// Number of parameters corrupted per trial.
    int num_params = 6;
    /// Noise stddev as a multiple of the model's parameter stddev.
    float relative_sigma = 5.0f;
  };

  RandomPerturbation() : RandomPerturbation(Options()) {}
  explicit RandomPerturbation(Options options) : options_(options) {}

  /// `victim` is unused (random corruption ignores inputs).
  Perturbation craft(nn::Sequential& model, const Tensor& victim,
                     Rng& rng) const override;
  std::string name() const override { return "Random"; }

 private:
  Options options_;
};

}  // namespace dnnv::attack

#endif  // DNNV_ATTACK_RANDOM_PERTURBATION_H_
