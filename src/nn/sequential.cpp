#include "nn/sequential.h"

#include <sstream>

#include "nn/activation_layer.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/flatten.h"
#include "nn/maxpool2d.h"
#include "nn/normalize.h"
#include "tensor/batch.h"
#include "util/error.h"

namespace dnnv::nn {

namespace {
constexpr std::uint32_t kModelMagic = 0x564E4E44;  // "DNNV"
constexpr std::uint32_t kModelVersion = 1;
}  // namespace

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  DNNV_CHECK(layer != nullptr, "cannot add null layer");
  std::ostringstream name;
  name << layer->kind() << layers_.size();
  layer->set_name(name.str());
  layers_.push_back(std::move(layer));
  return *this;
}

Layer& Sequential::layer(std::size_t index) {
  DNNV_CHECK(index < layers_.size(), "layer index " << index << " out of range");
  return *layers_[index];
}

const Layer& Sequential::layer(std::size_t index) const {
  DNNV_CHECK(index < layers_.size(), "layer index " << index << " out of range");
  return *layers_[index];
}

Tensor Sequential::forward(const Tensor& input) {
  DNNV_CHECK(!layers_.empty(), "empty model");
  Tensor value = input;
  for (auto& layer : layers_) value = layer->forward(value);
  return value;
}

Tensor Sequential::forward_with_activations(const Tensor& input,
                                            std::vector<Tensor>& activations) {
  DNNV_CHECK(!layers_.empty(), "empty model");
  activations.clear();
  Tensor value = input;
  for (auto& layer : layers_) {
    value = layer->forward(value);
    if (layer->is_activation()) activations.push_back(value);
  }
  return value;
}

Tensor Sequential::backward(const Tensor& grad_logits) {
  DNNV_CHECK(!layers_.empty(), "empty model");
  Tensor grad = grad_logits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->backward(grad);
  }
  return grad;
}

Tensor Sequential::sensitivity_backward(const Tensor& sens_logits) {
  DNNV_CHECK(!layers_.empty(), "empty model");
  Tensor sens = sens_logits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    sens = (*it)->sensitivity_backward(sens);
  }
  return sens;
}

const Tensor& Sequential::forward(const Tensor& input, Workspace& ws) {
  DNNV_CHECK(!layers_.empty(), "empty model");
  auto& shapes = ws.shapes();
  shapes.clear();
  shapes.reserve(layers_.size());
  const Tensor* value = &input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    shapes.push_back(value->shape());
    Tensor& out =
        ws.buffer(i, kSlotOutput, layers_[i]->output_shape(value->shape()));
    layers_[i]->forward_into(i, *value, out, ws);
    value = &out;
  }
  return *value;
}

const Tensor& Sequential::forward_with_activations(
    const Tensor& input, Workspace& ws,
    std::vector<const Tensor*>& activations) {
  DNNV_CHECK(!layers_.empty(), "empty model");
  activations.clear();
  auto& shapes = ws.shapes();
  shapes.clear();
  shapes.reserve(layers_.size());
  const Tensor* value = &input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    shapes.push_back(value->shape());
    Tensor& out =
        ws.buffer(i, kSlotOutput, layers_[i]->output_shape(value->shape()));
    layers_[i]->forward_into(i, *value, out, ws);
    value = &out;
    if (layers_[i]->is_activation()) activations.push_back(value);
  }
  return *value;
}

const Tensor& Sequential::backward(const Tensor& grad_logits, Workspace& ws) {
  const auto& shapes = ws.shapes();
  DNNV_CHECK(shapes.size() == layers_.size(),
             "workspace backward without a prior workspace forward");
  const Tensor* grad = &grad_logits;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    Tensor& grad_in = ws.buffer(i, kSlotGrad, shapes[i]);
    layers_[i]->backward_into(i, *grad, grad_in, ws);
    grad = &grad_in;
  }
  return *grad;
}

const Tensor& Sequential::sensitivity_backward(const Tensor& sens_logits,
                                               Workspace& ws) {
  const auto& shapes = ws.shapes();
  DNNV_CHECK(shapes.size() == layers_.size(),
             "workspace sensitivity pass without a prior workspace forward");
  const Tensor* sens = &sens_logits;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    Tensor& sens_in = ws.buffer(i, kSlotSens, shapes[i]);
    layers_[i]->sensitivity_backward_into(i, *sens, sens_in, ws);
    sens = &sens_in;
  }
  return *sens;
}

const Tensor& Sequential::sensitivity_backward_item(std::int64_t item,
                                                    const Tensor& sens_logits,
                                                    Workspace& ws) {
  const auto& shapes = ws.shapes();
  DNNV_CHECK(shapes.size() == layers_.size(),
             "per-item sensitivity pass without a prior workspace forward");
  const Tensor* sens = &sens_logits;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    // This layer's input shape with the batch axis collapsed to one item.
    std::vector<std::int64_t> dims = shapes[i].dims();
    dims[0] = 1;
    Tensor& sens_in = ws.buffer(i, kSlotSens, Shape(dims));
    layers_[i]->sensitivity_backward_item(i, item, *sens, sens_in, ws);
    sens = &sens_in;
  }
  return *sens;
}

void Sequential::zero_grads() {
  for (auto& layer : layers_) layer->zero_grads();
}

int Sequential::predict_label(const Tensor& input) {
  const Tensor logits = forward(stack_batch({input}));
  return static_cast<int>(argmax(logits));
}

std::vector<int> Sequential::predict_labels(const Tensor& batch) {
  const Tensor logits = forward(batch);
  const std::int64_t n = logits.shape()[0];
  const std::int64_t k = logits.shape()[1];
  std::vector<int> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < k; ++j) {
      if (row[j] > row[best]) best = j;
    }
    labels[static_cast<std::size_t>(i)] = static_cast<int>(best);
  }
  return labels;
}

std::vector<ParamView> Sequential::param_views() {
  std::vector<ParamView> views;
  for (auto& layer : layers_) {
    for (auto& view : layer->param_views()) views.push_back(view);
  }
  return views;
}

std::int64_t Sequential::param_count() const {
  std::int64_t total = 0;
  for (const auto& layer : layers_) total += layer->param_count();
  return total;
}

Sequential::ParamLocation Sequential::locate(std::int64_t global_index) {
  DNNV_CHECK(global_index >= 0, "negative parameter index");
  std::int64_t remaining = global_index;
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const auto views = layers_[li]->param_views();
    for (std::size_t vi = 0; vi < views.size(); ++vi) {
      if (remaining < views[vi].size) {
        return ParamLocation{li, vi, remaining};
      }
      remaining -= views[vi].size;
    }
  }
  DNNV_THROW("parameter index " << global_index << " out of range "
                                << param_count());
}

float Sequential::get_param(std::int64_t global_index) {
  const auto loc = locate(global_index);
  return layers_[loc.layer]->param_views()[loc.view].data[loc.offset];
}

void Sequential::set_param(std::int64_t global_index, float value) {
  const auto loc = locate(global_index);
  layers_[loc.layer]->param_views()[loc.view].data[loc.offset] = value;
}

void Sequential::add_to_param(std::int64_t global_index, float delta) {
  const auto loc = locate(global_index);
  layers_[loc.layer]->param_views()[loc.view].data[loc.offset] += delta;
}

float Sequential::get_grad(std::int64_t global_index) {
  const auto loc = locate(global_index);
  return layers_[loc.layer]->param_views()[loc.view].grad[loc.offset];
}

std::string Sequential::param_name(std::int64_t global_index) {
  const auto loc = locate(global_index);
  const auto view = layers_[loc.layer]->param_views()[loc.view];
  std::ostringstream os;
  os << view.name << '[' << loc.offset << ']';
  return os.str();
}

bool Sequential::param_is_bias(std::int64_t global_index) {
  const auto loc = locate(global_index);
  return layers_[loc.layer]->param_views()[loc.view].is_bias;
}

std::vector<float> Sequential::snapshot_params() {
  std::vector<float> snapshot;
  snapshot.reserve(static_cast<std::size_t>(param_count()));
  for (const auto& view : param_views()) {
    snapshot.insert(snapshot.end(), view.data, view.data + view.size);
  }
  return snapshot;
}

void Sequential::restore_params(const std::vector<float>& snapshot) {
  DNNV_CHECK(static_cast<std::int64_t>(snapshot.size()) == param_count(),
             "snapshot size " << snapshot.size() << " does not match model ("
                              << param_count() << " params)");
  std::size_t pos = 0;
  for (const auto& view : param_views()) {
    for (std::int64_t i = 0; i < view.size; ++i) view.data[i] = snapshot[pos++];
  }
}

void Sequential::save(ByteWriter& writer) const {
  writer.write_u32(kModelMagic);
  writer.write_u32(kModelVersion);
  writer.write_u64(layers_.size());
  for (const auto& layer : layers_) layer->save(writer);
}

Sequential Sequential::load(ByteReader& reader) {
  DNNV_CHECK(reader.read_u32() == kModelMagic, "not a dnnv model stream");
  DNNV_CHECK(reader.read_u32() == kModelVersion, "unsupported model version");
  const std::uint64_t count = reader.read_u64();
  Sequential model;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string kind = reader.read_string();
    if (kind == "dense") {
      model.add(Dense::load(reader));
    } else if (kind == "conv2d") {
      model.add(Conv2d::load(reader));
    } else if (kind == "maxpool2d") {
      model.add(MaxPool2d::load(reader));
    } else if (kind == "flatten") {
      model.add(Flatten::load(reader));
    } else if (kind == "activation") {
      model.add(ActivationLayer::load(reader));
    } else if (kind == "normalize") {
      model.add(Normalize::load(reader));
    } else if (kind == "dropout") {
      model.add(Dropout::load(reader));
    } else {
      DNNV_THROW("unknown layer kind '" << kind << "' in model stream");
    }
  }
  return model;
}

void Sequential::save_file(const std::string& path) const {
  ByteWriter writer;
  save(writer);
  write_file(path, writer.bytes());
}

Sequential Sequential::load_file(const std::string& path) {
  ByteReader reader(read_file(path));
  return load(reader);
}

Sequential Sequential::clone() const {
  Sequential copy;
  for (const auto& layer : layers_) {
    copy.layers_.push_back(layer->clone());  // keep original names
  }
  return copy;
}

Shape Sequential::output_shape(const Shape& input_shape) const {
  Shape shape = input_shape;
  for (const auto& layer : layers_) shape = layer->output_shape(shape);
  return shape;
}

std::string Sequential::summary() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i != 0) os << " -> ";
    const Layer& l = *layers_[i];
    if (l.kind() == "conv2d") {
      const auto& conv = static_cast<const Conv2d&>(l);
      os << "conv2d(" << conv.config().in_channels << "->"
         << conv.config().out_channels << ",k" << conv.config().kernel << ")";
    } else if (l.kind() == "dense") {
      const auto& dense = static_cast<const Dense&>(l);
      os << "dense(" << dense.in_features() << "->" << dense.out_features()
         << ")";
    } else if (l.kind() == "activation") {
      os << to_string(static_cast<const ActivationLayer&>(l).activation());
    } else {
      os << l.kind();
    }
  }
  return os.str();
}

}  // namespace dnnv::nn
