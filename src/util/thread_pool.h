// Minimal fixed-size thread pool with a parallel_for helper.
//
// Used to parallelise embarrassingly parallel experiment work (per-sample
// coverage masks, attack trials). Determinism rule: parallel_for partitions
// work by index, and all per-index randomness is derived from (seed, index),
// so results are independent of thread count and scheduling.
#ifndef DNNV_UTIL_THREAD_POOL_H_
#define DNNV_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dnnv {

/// Fixed-size worker pool. Tasks are std::function<void()>; exceptions thrown
/// by tasks are captured and rethrown from wait_all()/parallel_for().
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = hardware concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished; rethrows the first
  /// captured task exception (if any). After the rethrow the pool is fully
  /// reusable: the error slot is cleared and the workers keep running.
  ///
  /// Note: waits for ALL tasks in flight, including other callers'. Code
  /// that shares the pool with concurrent producers (the validation
  /// service, predict_all) should track its own tasks with a TaskGroup
  /// instead.
  void wait_all();

  /// Runs body(i) for i in [0, count) across the pool and waits.
  /// body must be safe to invoke concurrently for distinct i.
  ///
  /// Work is split into at most num_threads() * 4 contiguous-range chunks
  /// (static partition), not one std::function per index — per-mask
  /// workloads with ~1e5 cheap indices measure the difference. Determinism:
  /// each index runs exactly once, so index-seeded work is schedule-invariant.
  ///
  /// Nested use is safe AND parallel (bounded work-splitting): the caller
  /// claims chunks from a shared atomic cursor itself while idle workers
  /// help through queued helper tasks, so a GEMM tiled from inside a pool
  /// worker (a validation-service lane, an outer parallel_for chunk) still
  /// spreads across free threads instead of falling back to serial. The
  /// wait condition is "all chunks executed", which the caller can satisfy
  /// alone — helpers that arrive late find no work and return, so no
  /// combination of nesting and pool saturation can deadlock. Splitting is
  /// depth-bounded: at two active parallel_for levels on a thread, deeper
  /// calls run inline (two levels already cover the pool).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

  /// True when the calling thread is a worker of any ThreadPool. Callers can
  /// use it to pick batch shapes; parallel_for itself no longer serializes
  /// on it (see above).
  static bool in_worker();

  /// Process-wide shared pool (created on first use, hardware concurrency).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Tracks a private set of tasks on a shared ThreadPool. Unlike
/// ThreadPool::wait_all(), TaskGroup::wait() blocks only for the tasks
/// submitted through THIS group and rethrows only their errors, so several
/// producers (validation-service micro-batches, a predict_all replay, a
/// bench driver) can share one pool without waiting on — or stealing
/// exceptions from — each other's work queues.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}

  /// Waits for any still-pending tasks; a pending error is dropped (call
  /// wait() yourself to observe it).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits `task` to the pool, tracked by this group. Task exceptions are
  /// captured per group and rethrown from wait().
  void run(std::function<void()> task);

  /// Blocks until every task submitted through run() has finished, then
  /// rethrows the group's first captured exception (if any). The group is
  /// reusable afterwards.
  void wait();

  /// Tasks submitted but not yet finished.
  std::size_t pending() const;

 private:
  ThreadPool& pool_;
  mutable std::mutex mutex_;
  std::condition_variable idle_;
  std::size_t pending_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace dnnv

#endif  // DNNV_UTIL_THREAD_POOL_H_
