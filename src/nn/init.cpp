#include "nn/init.h"

#include <cmath>

#include "util/error.h"

namespace dnnv::nn {

InitKind default_init_for(ActivationKind kind) {
  switch (kind) {
    case ActivationKind::kReLU:
    case ActivationKind::kLeakyReLU:
      return InitKind::kKaimingNormal;
    case ActivationKind::kTanh:
    case ActivationKind::kSigmoid:
      return InitKind::kXavierNormal;
  }
  DNNV_THROW("unknown activation kind");
}

void initialize_weights(Tensor& weights, InitKind kind, std::int64_t fan_in,
                        std::int64_t fan_out, Rng& rng) {
  DNNV_CHECK(fan_in > 0 && fan_out > 0, "fans must be positive");
  switch (kind) {
    case InitKind::kKaimingNormal: {
      const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
      for (std::int64_t i = 0; i < weights.numel(); ++i) {
        weights[i] = static_cast<float>(rng.normal(0.0, stddev));
      }
      return;
    }
    case InitKind::kXavierNormal: {
      const float stddev =
          std::sqrt(2.0f / static_cast<float>(fan_in + fan_out));
      for (std::int64_t i = 0; i < weights.numel(); ++i) {
        weights[i] = static_cast<float>(rng.normal(0.0, stddev));
      }
      return;
    }
    case InitKind::kZero:
      weights.fill(0.0f);
      return;
  }
  DNNV_THROW("unknown init kind");
}

}  // namespace dnnv::nn
