#include "ip/device_pool.h"

#include <utility>

#include "util/error.h"

namespace dnnv::ip {

DevicePool::DevicePool(Factory factory, std::size_t max_devices)
    : factory_(std::move(factory)), max_devices_(max_devices) {
  DNNV_CHECK(factory_ != nullptr, "DevicePool needs a device factory");
}

DevicePool::Lease::Lease(Lease&& other) noexcept
    : pool_(other.pool_),
      device_(std::move(other.device_)),
      generation_(other.generation_) {
  other.pool_ = nullptr;
}

DevicePool::Lease& DevicePool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    if (pool_ && device_) pool_->release(std::move(device_), generation_);
    pool_ = other.pool_;
    device_ = std::move(other.device_);
    generation_ = other.generation_;
    other.pool_ = nullptr;
  }
  return *this;
}

DevicePool::Lease::~Lease() {
  if (pool_ && device_) pool_->release(std::move(device_), generation_);
}

DevicePool::Lease DevicePool::build_unlocked(
    std::unique_lock<std::mutex>& lock) {
  // The factory can be expensive (device reconstruction); run it unlocked.
  ++created_;
  ++live_;
  const std::size_t generation = generation_;
  lock.unlock();
  std::unique_ptr<BlackBoxIp> device;
  try {
    device = factory_();
  } catch (...) {
    // Give the slot back, or a capped pool shrinks permanently and a later
    // acquire() blocks forever.
    lock.lock();
    --live_;
    available_.notify_one();
    throw;
  }
  if (device == nullptr) {
    lock.lock();
    --live_;
    available_.notify_one();
    return Lease();
  }
  return Lease(this, std::move(device), generation);
}

DevicePool::Lease DevicePool::acquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (!idle_.empty()) {
      std::unique_ptr<BlackBoxIp> device = std::move(idle_.back());
      idle_.pop_back();
      return Lease(this, std::move(device), generation_);
    }
    if (max_devices_ == 0 || live_ < max_devices_) return build_unlocked(lock);
    available_.wait(lock);
  }
}

DevicePool::Lease DevicePool::try_acquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!idle_.empty()) {
    std::unique_ptr<BlackBoxIp> device = std::move(idle_.back());
    idle_.pop_back();
    return Lease(this, std::move(device), generation_);
  }
  if (max_devices_ == 0 || live_ < max_devices_) return build_unlocked(lock);
  return Lease();
}

void DevicePool::release(std::unique_ptr<BlackBoxIp> device,
                         std::size_t generation) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (generation == generation_) {
    idle_.push_back(std::move(device));
  } else {
    --live_;  // stale replica from before an invalidate(): drop it
  }
  available_.notify_one();
}

void DevicePool::invalidate() {
  std::lock_guard<std::mutex> lock(mutex_);
  live_ -= idle_.size();
  idle_.clear();
  ++generation_;
  available_.notify_all();
}

std::size_t DevicePool::created() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return created_;
}

std::size_t DevicePool::idle() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return idle_.size();
}

}  // namespace dnnv::ip
