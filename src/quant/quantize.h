// Scalar quantization math shared by the int8 inference engine.
//
// Scheme: symmetric int8 (zero point 0) with codes clamped to [-127, 127]
// for weights AND activations, so negation never overflows and the dequant
// map is value = scale * code. Accumulation is int32; the accumulator is
// rescaled to the next layer's activation grid with a fixed-point multiplier
// (Q31 mantissa + right shift) — no float touches the inner loops.
#ifndef DNNV_QUANT_QUANTIZE_H_
#define DNNV_QUANT_QUANTIZE_H_

#include <cstdint>
#include <vector>

namespace dnnv::quant {

/// Symmetric int8 code range. -128 is intentionally unused (symmetry; |q| is
/// always representable, and the dequant error bound is scale/2 everywhere).
inline constexpr std::int32_t kQmin = -127;
inline constexpr std::int32_t kQmax = 127;

/// Weight/activation quantization granularity.
enum class Granularity : std::uint8_t { kPerTensor = 0, kPerChannel = 1 };

/// How activation clip ranges are calibrated over the representative pool.
enum class CalibrationMethod : std::uint8_t { kMinMax = 0, kPercentile = 1 };

/// Post-training quantization options.
struct QuantConfig {
  Granularity weight_granularity = Granularity::kPerChannel;
  CalibrationMethod calibration = CalibrationMethod::kMinMax;
  /// Fraction of |activation| mass kept inside the clip range (kPercentile).
  double percentile = 0.999;
  /// Cap on calibration items actually swept (pools can be huge).
  std::int64_t max_calibration_items = 256;
};

/// scale s such that dequant(q) = s * q covers [-amax, amax] with 127 steps.
/// amax == 0 (dead tensor/channel) falls back to 1 so codes stay exact zeros.
float choose_scale(float amax);

/// Nearest-code quantization with ties rounding half away from zero
/// (std::lround semantics), clamped to [kQmin, kQmax].
std::int8_t quantize_value(float value, float scale);

/// Fixed-point representation of a positive real requantization ratio
/// r = multiplier * 2^-shift, multiplier a Q31 mantissa in [2^30, 2^31).
/// r == 0 (dead channel) is encoded as multiplier 0.
struct Requant {
  std::int32_t multiplier = 0;
  std::int32_t shift = 0;
};

/// Encodes r (must be >= 0 and finite) as a Requant.
Requant requant_from_real(double r);

/// x * 2^-shift with ties rounding half away from zero. shift in [0, 62].
std::int64_t rounding_shift_right(std::int64_t x, std::int32_t shift);

/// Rescales an int32 accumulator onto the output int8 grid:
/// sat8(round(acc * multiplier * 2^-shift)). Pure 64-bit integer arithmetic;
/// saturates to [kQmin, kQmax] (including for acc at the int32 extremes).
std::int8_t requantize(std::int32_t acc, const Requant& rq);

/// max |values[i]| over a range (0 for empty).
float amax_of(const float* values, std::int64_t count);

/// Per-channel scales for a [channels, per_channel] weight matrix; per-tensor
/// granularity returns a single scale replicated per channel by the caller.
std::vector<float> weight_scales(const float* weights, std::int64_t channels,
                                 std::int64_t per_channel,
                                 Granularity granularity);

}  // namespace dnnv::quant

#endif  // DNNV_QUANT_QUANTIZE_H_
