#include "coverage/report.h"

#include "util/error.h"

namespace dnnv::cov {

std::vector<LayerCoverage> per_layer_coverage(nn::Sequential& model,
                                              const DynamicBitset& covered) {
  DNNV_CHECK(covered.size() == static_cast<std::size_t>(model.param_count()),
             "bitset size " << covered.size() << " != param count "
                            << model.param_count());
  std::vector<LayerCoverage> report;
  std::size_t bit = 0;
  for (const auto& view : model.param_views()) {
    LayerCoverage entry;
    entry.name = view.name;
    entry.total = static_cast<std::size_t>(view.size);
    entry.is_bias = view.is_bias;
    for (std::int64_t i = 0; i < view.size; ++i, ++bit) {
      if (covered.test(bit)) ++entry.covered;
    }
    report.push_back(std::move(entry));
  }
  return report;
}

std::vector<CriterionReport> criteria_report(
    const std::vector<std::string>& names, const CriterionContext& ctx,
    const CriterionConfig& config, const std::vector<Tensor>& inputs) {
  std::vector<CriterionReport> report;
  report.reserve(names.size());
  for (const auto& name : names) {
    const auto criterion = make_criterion(name, ctx, config);
    CoverageMap map(criterion->total_points());
    for (const auto& mask : criterion->measure_pool(inputs)) map.add(mask);
    CriterionReport row;
    row.name = name;
    row.description = criterion->describe();
    row.total_points = map.total_points();
    row.covered = map.covered_count();
    report.push_back(std::move(row));
  }
  return report;
}

}  // namespace dnnv::cov
