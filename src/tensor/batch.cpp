#include "tensor/batch.h"

#include <cstring>

#include "util/error.h"

namespace dnnv {

Tensor stack_batch(const std::vector<Tensor>& items) {
  DNNV_CHECK(!items.empty(), "cannot stack an empty batch");
  const Shape& item_shape = items.front().shape();
  std::vector<std::int64_t> dims;
  dims.push_back(static_cast<std::int64_t>(items.size()));
  dims.insert(dims.end(), item_shape.dims().begin(), item_shape.dims().end());
  Tensor out{Shape(dims)};
  const std::int64_t stride = item_shape.numel();
  for (std::size_t i = 0; i < items.size(); ++i) {
    DNNV_CHECK(items[i].shape() == item_shape,
               "batch item " << i << " has shape " << items[i].shape()
                             << ", expected " << item_shape);
    std::memcpy(out.data() + static_cast<std::int64_t>(i) * stride,
                items[i].data(), static_cast<std::size_t>(stride) * sizeof(float));
  }
  return out;
}

void stack_batch_range(const std::vector<Tensor>& items, std::size_t begin,
                       std::size_t end, Tensor& out) {
  DNNV_CHECK(begin < end && end <= items.size(),
             "bad stack range [" << begin << ", " << end << ") of "
                                 << items.size());
  const Shape& item_shape = items[begin].shape();
  std::vector<std::int64_t> dims;
  dims.push_back(static_cast<std::int64_t>(end - begin));
  dims.insert(dims.end(), item_shape.dims().begin(), item_shape.dims().end());
  out.resize(Shape(dims));
  const std::int64_t stride = item_shape.numel();
  for (std::size_t i = begin; i < end; ++i) {
    DNNV_CHECK(items[i].shape() == item_shape,
               "batch item " << i << " has shape " << items[i].shape()
                             << ", expected " << item_shape);
    std::memcpy(out.data() + static_cast<std::int64_t>(i - begin) * stride,
                items[i].data(),
                static_cast<std::size_t>(stride) * sizeof(float));
  }
}

Tensor slice_batch(const Tensor& batch, std::int64_t index) {
  DNNV_CHECK(batch.shape().ndim() >= 2, "slice_batch needs a batched tensor");
  const std::int64_t n = batch.shape()[0];
  DNNV_CHECK(index >= 0 && index < n, "batch index " << index << " out of " << n);
  std::vector<std::int64_t> dims(batch.shape().dims().begin() + 1,
                                 batch.shape().dims().end());
  Tensor out{Shape(dims)};
  const std::int64_t stride = out.numel();
  std::memcpy(out.data(), batch.data() + index * stride,
              static_cast<std::size_t>(stride) * sizeof(float));
  return out;
}

std::int64_t batch_size(const Tensor& batch) {
  DNNV_CHECK(batch.shape().ndim() >= 1, "batch_size of rank-0 tensor");
  return batch.shape()[0];
}

}  // namespace dnnv
