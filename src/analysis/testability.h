// Static fault testability over an interval range analysis.
//
// Classical ATPG prunes faults a tester can never observe before spending
// simulation on them. This pass does the int8-IR equivalent: given the
// per-channel reachable intervals from analysis::analyze_ranges, each
// fault::Fault in a FaultUniverse is classified
//
//   untestable        — NO input in the quantize layer's saturated domain
//                       can make the faulted model's logits differ from the
//                       clean model's (so no test suite, present or future,
//                       can detect it), or
//   possibly-testable — the analysis cannot prove that.
//
// Three proof rules, all exact over the engine's integer semantics:
//   no-excitation     — the fault provably never changes the value it sits
//                       on (zero weight-delta against the tap interval, bias
//                       codes rounding to the same bias_i32, an accumulator
//                       bit already stuck at its fault value across the
//                       reachable interval).
//   requant-masked    — the clean and faulted accumulators provably
//                       requantize to the same int8 code for every reachable
//                       value: requantize is monotone in the accumulator
//                       (multiplier >= 0), so the two step functions are
//                       compared exactly, segment by segment.
//   activation-masked — the downstream activation LUT maps both the clean
//                       and the faulted code interval to one identical
//                       constant, so the channel's output never moves.
//
// Soundness contract (asserted in tests/analysis_test.cpp): every fault
// classified untestable is undetected by exhaustive fault simulation — on
// any suite, since FaultSimulator detection is faulted-vs-clean label
// difference and an untestable fault's logits are bit-identical to clean.
#ifndef DNNV_ANALYSIS_TESTABILITY_H_
#define DNNV_ANALYSIS_TESTABILITY_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/range_analysis.h"
#include "fault/fault_model.h"
#include "quant/quant_model.h"

namespace dnnv::analysis {

/// Why a fault was proven untestable (kTestable == it was not).
enum class UntestableReason : std::uint8_t {
  kTestable = 0,
  kNoExcitation = 1,      ///< fault never changes the faulted site's value
  kRequantMasked = 2,     ///< identical Q31 rounding over the reachable range
  kActivationMasked = 3,  ///< LUT collapses clean + faulted range to one code
};

const char* to_string(UntestableReason reason);

struct TestabilityReport {
  /// Parallel to the classified universe's fault list.
  std::vector<UntestableReason> reasons;

  std::size_t untestable = 0;
  std::size_t no_excitation = 0;
  std::size_t requant_masked = 0;
  std::size_t activation_masked = 0;

  bool is_untestable(std::size_t i) const {
    return reasons[i] != UntestableReason::kTestable;
  }

  /// "pruned 312/2048 (15.2%): 201 no-excitation, ..." one-liner.
  std::string summary(std::size_t universe_size) const;
};

/// Classifies every fault of `universe` against `range` (which must come
/// from analyze_ranges over the same `model`). Deterministic; read-only on
/// the model.
TestabilityReport classify_universe(const quant::QuantModel& model,
                                    const ModelRange& range,
                                    const fault::FaultUniverse& universe);

/// The universe with the untestable faults removed, order preserved — feed
/// this (not the full universe) to FaultSimulator.
fault::FaultUniverse prune_untestable(const fault::FaultUniverse& universe,
                                      const TestabilityReport& report);

// ---- Calibration-conditioned (two-tier) classification ----

/// Static excitation target of one conditionally-masked fault: a hull of
/// SATURATED biased-accumulator values of its (layer, channel) on which the
/// clean and faulted models provably CAN disagree, computed over the
/// UNCONDITIONAL range. A test generator wanting to expose the fault should
/// drive the channel's accumulator into `acc` — in-distribution inputs
/// provably cannot reach it (that is what made the fault conditional).
struct ExcitationTarget {
  std::uint64_t fault_id = 0;
  std::uint8_t layer = 0;
  std::int64_t channel = -1;
  Interval acc;
};

/// Two-tier result: faults testable under the unconditional range but
/// provably masked under a calibration-conditioned range are CONDITIONALLY
/// MASKED IN-DISTRIBUTION — still real, still detectable by an adversarial
/// test vector, and therefore NEVER pruned. They are reported (count +
/// per-fault excitation targets) so the vendor flow can surface them and
/// targeted generation can chase them.
struct ConditionalReport {
  /// Parallel to the classified universe: 1 = conditionally masked.
  std::vector<std::uint8_t> conditional;
  std::size_t count = 0;
  /// Exactly one entry per conditional fault, in universe order.
  std::vector<ExcitationTarget> excitations;

  /// "conditionally masked 12/512 (2.3%)" one-liner.
  std::string summary(std::size_t universe_size) const;
};

/// Classifies `universe` two-tier: `unconditional` is the report over the
/// adversarial-input-sound range, `calibrated` a range conditioned on
/// RangeOptions::input_domains (same model, same domain choice). A fault is
/// conditional iff the unconditional pass could not prove it untestable but
/// the calibrated pass can. Excitation targets come from `uncond_range`.
ConditionalReport classify_conditional(const quant::QuantModel& model,
                                       const ModelRange& uncond_range,
                                       const TestabilityReport& unconditional,
                                       const ModelRange& cal_range,
                                       const fault::FaultUniverse& universe);

// ---- Static dominance (detection-implication collapse) ----

/// Classical ATPG dominance over the universe: fault D is `dominated` by its
/// `representative` R when EVERY test that detects R provably also detects
/// D, so D can be dropped before simulation — a suite covering R covers D
/// for free, and detection stats over the kept set are a sound lower bound
/// for the full universe (unlike untestable faults, dominated faults are
/// usually detectable). Two proof rules:
///
///   requant-equality — same-(layer, channel) faults whose faulted requant
///     step functions are provably EQUAL on the reachable accumulator
///     interval produce bit-identical faulted models (detection-equivalent:
///     the implication holds in both directions). Candidates: bias-code,
///     singleton-tap weight-code and requant-multiplier faults.
///   logit-shift — on the model's monotone output tail a code fault shifts
///     ONE final input feature or class logit pointwise with a fixed sign.
///     At the dequantizing output layer itself, argmax is monotone in a
///     single logit; one dense layer upstream (reached through only
///     nondecreasing activation LUTs / flatten), the shifted feature enters
///     the final logits affinely, and an argmax that picks the clean label
///     at shift 0 and at the larger shift picks it at every shift between.
///     Either way, for same-site faults whose shifts share a sign,
///     detecting the SMALLER shift implies detecting the larger; the
///     minimal shift is kept as representative, the easier larger-shift
///     faults drop. Guarded by a per-class |bias| + 128 * sum|w| < 2^24
///     bound on the output layer, which makes the float logits an exactly
///     order-preserving image of the integer accumulators (no int32 wrap,
///     no saturation, exact int -> float conversion).
struct DominanceReport {
  /// Parallel to the universe: index of the fault's representative (its own
  /// index when not merged).
  std::vector<std::size_t> representative;
  /// Parallel to the universe: 1 = dropped in favour of its representative.
  std::vector<std::uint8_t> dominated;
  std::size_t count = 0;

  /// "dominated 96/512 (18.8%)" one-liner.
  std::string summary(std::size_t universe_size) const;
};

/// Proves dominance over `universe` against `range` (which must be an
/// unconditional range over the same model — conditioning would make the
/// proofs conditional too). Deterministic; faults matching no rule keep
/// their own class.
DominanceReport analyze_dominance(const quant::QuantModel& model,
                                  const ModelRange& range,
                                  const fault::FaultUniverse& universe);

/// The universe with dominated faults removed, order preserved.
fault::FaultUniverse prune_dominated(const fault::FaultUniverse& universe,
                                     const DominanceReport& report);

/// Exact equality test of two monotone nondecreasing int64 -> int8-code step
/// functions on [lo, hi]: walks the <= 256 constant segments of `f`
/// (binary-searching each segment end) and checks `g` agrees at both
/// endpoints of every segment. Returns false (sound: "cannot prove equal")
/// if either function is detected non-monotone or the walk exceeds its
/// segment budget. Exposed for tests.
template <typename F, typename G>
bool equal_on_interval(F&& f, G&& g, std::int64_t lo, std::int64_t hi) {
  if (lo > hi) return true;
  if (f(lo) > f(hi) || g(lo) > g(hi)) return false;
  std::int64_t a = lo;
  // An int8-valued monotone step function has at most 255 jumps; the guard
  // fails closed if the callables misbehave.
  for (int guard = 0; guard < 300; ++guard) {
    const int v = f(a);
    if (g(a) != v) return false;
    std::int64_t b = hi;
    if (f(hi) != v) {
      // Largest x with f(x) == v: f is monotone, so bisect the boundary.
      std::int64_t x_lo = a;
      std::int64_t x_hi = hi;  // f(x_lo) == v, f(x_hi) > v
      while (x_lo + 1 < x_hi) {
        const std::int64_t mid = x_lo + (x_hi - x_lo) / 2;
        if (f(mid) == v) {
          x_lo = mid;
        } else {
          x_hi = mid;
        }
      }
      b = x_lo;
    }
    if (g(b) != v) return false;
    if (b == hi) return true;
    a = b + 1;
  }
  return false;
}

/// Hull of {t in [lo, hi] : f(t) != g(t)} for two monotone nondecreasing
/// int64 -> int8-code step functions. Returns std::nullopt when the
/// functions are equal on the whole interval. Fails OPEN — the whole
/// [lo, hi] — when either function is detected non-monotone or the segment
/// walk exceeds its budget: the result is a sound over-approximation either
/// way (used for excitation targeting, never for pruning). Exposed for
/// tests.
template <typename F, typename G>
std::optional<Interval> difference_hull(F&& f, G&& g, std::int64_t lo,
                                        std::int64_t hi) {
  if (lo > hi) return std::nullopt;
  if (f(lo) > f(hi) || g(lo) > g(hi)) return Interval{lo, hi};
  std::int64_t dmin = hi + 1;
  std::int64_t dmax = lo - 1;
  std::int64_t a = lo;
  for (int guard = 0; guard < 300; ++guard) {
    const int v = f(a);
    // Segment end b: largest x in [a, hi] with f(x) == v (f is monotone).
    std::int64_t b = hi;
    if (f(hi) != v) {
      std::int64_t x_lo = a;
      std::int64_t x_hi = hi;
      while (x_lo + 1 < x_hi) {
        const std::int64_t mid = x_lo + (x_hi - x_lo) / 2;
        if (f(mid) == v) {
          x_lo = mid;
        } else {
          x_hi = mid;
        }
      }
      b = x_lo;
    }
    // Differences inside [a, b] where f == v throughout. g is monotone, so
    // {x : g(x) == v} is contiguous; anything outside it differs.
    const bool ga = g(a) == v;
    const bool gb = g(b) == v;
    if (!ga && !gb) {
      // Any interior g == v band leaves differing points at both ends.
      dmin = std::min(dmin, a);
      dmax = std::max(dmax, b);
    } else if (ga && !gb) {
      // g(a) == v, g(b) != v: for x >= a, g(x) >= v, so g == v iff g <= v;
      // bisect the largest x with g(x) <= v — differences are (x, b].
      std::int64_t x_lo = a;
      std::int64_t x_hi = b;
      while (x_lo + 1 < x_hi) {
        const std::int64_t mid = x_lo + (x_hi - x_lo) / 2;
        if (g(mid) <= v) {
          x_lo = mid;
        } else {
          x_hi = mid;
        }
      }
      dmin = std::min(dmin, x_lo + 1);
      dmax = std::max(dmax, b);
    } else if (!ga && gb) {
      // Mirror: g <= v up to b, so g == v iff g >= v; differences are
      // [a, y) with y the smallest x with g(x) >= v.
      std::int64_t x_lo = a;
      std::int64_t x_hi = b;
      while (x_lo + 1 < x_hi) {
        const std::int64_t mid = x_lo + (x_hi - x_lo) / 2;
        if (g(mid) >= v) {
          x_hi = mid;
        } else {
          x_lo = mid;
        }
      }
      dmin = std::min(dmin, a);
      dmax = std::max(dmax, x_hi - 1);
    }
    // ga && gb: g is pinched to v on the whole segment — no differences.
    if (b == hi) {
      if (dmin > dmax) return std::nullopt;
      return Interval{dmin, dmax};
    }
    a = b + 1;
  }
  return Interval{lo, hi};  // budget exceeded: fail open
}

}  // namespace dnnv::analysis

#endif  // DNNV_ANALYSIS_TESTABILITY_H_
