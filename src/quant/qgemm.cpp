#include "quant/qgemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/error.h"
#include "util/thread_pool.h"

#if defined(__AVX512VNNI__) && defined(__AVX512BW__) && defined(__AVX512F__)
#include <immintrin.h>
#define DNNV_QGEMM_VNNI 1
#else
#define DNNV_QGEMM_VNNI 0
#endif

namespace dnnv::quant {
namespace {

// Blocking mirrors the float kernel (tensor/gemm.cpp): kMC x kNC macro-tiles
// of C over kKC-deep packed slices, kMR x kNR register tile. K is padded to
// quads inside the panels because the VNNI instruction (vpdpbusd) consumes
// int8 four at a time.
//
// Signedness: vpdpbusd multiplies UNSIGNED a-bytes by signed b-bytes. A is
// therefore packed with a +128 offset (s8 XOR 0x80), and the per-column sums
// of B collected during packing undo it exactly:
//   sum_k (a+128)*b = sum_k a*b + 128 * colsum(b).
// Everything stays in exact int32 (see the overflow contract in the header),
// so the scalar fallback — which skips the offset entirely — produces
// bit-identical results.
constexpr std::int64_t kMR = 8;
constexpr std::int64_t kNR = 32;  // 2 zmm of 16 int32 lanes
constexpr std::int64_t kMC = 64;
constexpr std::int64_t kKC = 256;  // multiple of 4
constexpr std::int64_t kNC = 512;

#if DNNV_QGEMM_VNNI
constexpr std::uint8_t kAZero = 0x80;  // offset-encoded zero
#else
constexpr std::uint8_t kAZero = 0x00;
#endif

inline std::uint8_t encode_a(std::int8_t v) {
  return static_cast<std::uint8_t>(v) ^ kAZero;
}

/// Packs A[ic..ic+mc, pc..pc+kc] into kMR-row panels of K-quads:
/// dst[quad][row][4] — the 4 bytes a row contributes to one vpdpbusd.
/// Interior quads move 4 bytes at a time as a u32 (the offset encode is one
/// XOR against 0x80808080); only the ragged edges take the byte loop.
void pack_a(const std::int8_t* a, std::int64_t lda, std::int64_t ic,
            std::int64_t pc, std::int64_t mc, std::int64_t kc,
            std::uint8_t* dst) {
  const std::int64_t kc4 = (kc + 3) / 4;
  const std::int64_t full_q = kc / 4;  // quads with no k padding
  const std::uint32_t xor_mask = kAZero * 0x01010101u;
  for (std::int64_t ir = 0; ir < mc; ir += kMR) {
    const std::int64_t rows = std::min(kMR, mc - ir);
    for (std::int64_t r = 0; r < rows; ++r) {
      const std::int8_t* src = a + (ic + ir + r) * lda + pc;
      std::uint8_t* out = dst + r * 4;
      for (std::int64_t q = 0; q < full_q; ++q) {
        std::uint32_t quad;
        std::memcpy(&quad, src + q * 4, 4);
        quad ^= xor_mask;
        std::memcpy(out + q * kMR * 4, &quad, 4);
      }
      for (std::int64_t q = full_q; q < kc4; ++q) {
        for (std::int64_t t = 0; t < 4; ++t) {
          out[q * kMR * 4 + t] =
              q * 4 + t < kc ? encode_a(src[q * 4 + t]) : kAZero;
        }
      }
    }
    for (std::int64_t r = rows; r < kMR; ++r) {  // zero-pad missing rows
      std::uint8_t* out = dst + r * 4;
      for (std::int64_t q = 0; q < kc4; ++q) {
        std::memset(out + q * kMR * 4, kAZero, 4);
      }
    }
    dst += kc4 * kMR * 4;
  }
}

/// Packs B[pc..pc+kc, jc..jc+nc] into kNR-column panels of K-quads and
/// collects per-column sums (the offset correction). VNNI wants the quad
/// interleaved per lane (dst[quad][col][4] = one int32 lane of the b
/// operand); the scalar kernel wants columns contiguous per k step
/// (dst[quad][4][kNR]) so its inner j loop autovectorizes.
void pack_b(const std::int8_t* b, std::int64_t ldb, std::int64_t pc,
            std::int64_t jc, std::int64_t kc, std::int64_t nc, std::int8_t* dst,
            std::int32_t* colsum) {
  const std::int64_t kc4 = (kc + 3) / 4;
  for (std::int64_t j = 0; j < nc; ++j) colsum[j] = 0;
  for (std::int64_t jr = 0; jr < nc; jr += kNR) {
    const std::int64_t cols = std::min(kNR, nc - jr);
    const bool full = cols == kNR;
    for (std::int64_t q = 0; q < kc4; ++q) {
      std::int8_t* out = dst + q * kNR * 4;
      for (std::int64_t t = 0; t < 4; ++t) {
        const std::int64_t p = q * 4 + t;
        if (full && p < kc) {  // interior: branch-free row copy
          const std::int8_t* src = b + (pc + p) * ldb + jc + jr;
          std::int32_t* sums = colsum + jr;
          for (std::int64_t j = 0; j < kNR; ++j) {
#if DNNV_QGEMM_VNNI
            out[j * 4 + t] = src[j];
#else
            out[t * kNR + j] = src[j];
#endif
            sums[j] += src[j];
          }
          continue;
        }
        for (std::int64_t j = 0; j < kNR; ++j) {
          const bool live = j < cols && p < kc;
          const std::int8_t v =
              live ? b[(pc + p) * ldb + jc + jr + j] : std::int8_t{0};
#if DNNV_QGEMM_VNNI
          out[j * 4 + t] = v;
#else
          out[t * kNR + j] = v;
#endif
          if (live) colsum[jr + j] += v;
        }
      }
    }
    dst += kc4 * kNR * 4;
  }
}

#if DNNV_QGEMM_VNNI

/// C tile (rows x cols at c, leading dim ldc) += a_panel * b_panel over kc4
/// K-quads, with the unsigned-offset correction (128 * colsum) subtracted in
/// registers. Partial tiles use AVX-512 write masks — no scalar edge path.
void micro_kernel(std::int64_t kc4, const std::uint8_t* a_panel,
                  const std::int8_t* b_panel, const std::int32_t* colsum,
                  std::int32_t* c, std::int64_t ldc, std::int64_t rows,
                  std::int64_t cols) {
  __m512i acc0[kMR];
  __m512i acc1[kMR];
  for (std::int64_t r = 0; r < kMR; ++r) {
    acc0[r] = _mm512_setzero_si512();
    acc1[r] = _mm512_setzero_si512();
  }
  for (std::int64_t q = 0; q < kc4; ++q) {
    const __m512i b0 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(b_panel + q * kNR * 4));
    const __m512i b1 = _mm512_loadu_si512(
        reinterpret_cast<const void*>(b_panel + q * kNR * 4 + 64));
    const std::uint8_t* aq = a_panel + q * kMR * 4;
    for (std::int64_t r = 0; r < kMR; ++r) {
      std::int32_t quad;
      std::memcpy(&quad, aq + r * 4, 4);
      const __m512i av = _mm512_set1_epi32(quad);
      acc0[r] = _mm512_dpbusd_epi32(acc0[r], av, b0);
      acc1[r] = _mm512_dpbusd_epi32(acc1[r], av, b1);
    }
  }
  // corr = 128 * colsum, subtracted once per C element visit (each K slice
  // packs its own colsum, so slices compose additively).
  const __m512i corr0 = _mm512_slli_epi32(
      _mm512_loadu_si512(reinterpret_cast<const void*>(colsum)), 7);
  const __m512i corr1 = _mm512_slli_epi32(
      _mm512_loadu_si512(reinterpret_cast<const void*>(colsum + 16)), 7);
  const std::uint32_t lane_mask =
      cols >= kNR ? 0xFFFFFFFFu : ((1u << cols) - 1u);
  const __mmask16 m0 = static_cast<__mmask16>(lane_mask & 0xFFFFu);
  const __mmask16 m1 = static_cast<__mmask16>(lane_mask >> 16);
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int32_t* c_row = c + r * ldc;
    const __m512i t0 = _mm512_sub_epi32(acc0[r], corr0);
    const __m512i t1 = _mm512_sub_epi32(acc1[r], corr1);
    __m512i old0 = _mm512_maskz_loadu_epi32(m0, c_row);
    __m512i old1 = _mm512_maskz_loadu_epi32(m1, c_row + 16);
    _mm512_mask_storeu_epi32(c_row, m0, _mm512_add_epi32(old0, t0));
    _mm512_mask_storeu_epi32(c_row + 16, m1, _mm512_add_epi32(old1, t1));
  }
}

#else

void micro_kernel(std::int64_t kc4, const std::uint8_t* a_panel,
                  const std::int8_t* b_panel, std::int32_t* acc) {
  std::fill(acc, acc + kMR * kNR, 0);
  for (std::int64_t q = 0; q < kc4; ++q) {
    const std::uint8_t* aq = a_panel + q * kMR * 4;
    const std::int8_t* bq = b_panel + q * kNR * 4;
    for (std::int64_t t = 0; t < 4; ++t) {
      const std::int8_t* bt = bq + t * kNR;
      for (std::int64_t r = 0; r < kMR; ++r) {
        const auto ar = static_cast<std::int32_t>(
            static_cast<std::int8_t>(aq[r * 4 + t]));  // kAZero == 0: raw s8
        std::int32_t* accr = acc + r * kNR;
        for (std::int64_t j = 0; j < kNR; ++j) {
          accr[j] += ar * static_cast<std::int32_t>(bt[j]);
        }
      }
    }
  }
}

#endif  // DNNV_QGEMM_VNNI

/// One kMC x kNC macro-block of C; applies the unsigned-offset correction
/// while accumulating the register tile into C.
void macro_block(std::int64_t mc, std::int64_t nc, std::int64_t kc,
                 const std::uint8_t* a_pack, const std::int8_t* b_pack,
                 const std::int32_t* colsum, std::int32_t* c,
                 std::int64_t ldc) {
  const std::int64_t kc4 = (kc + 3) / 4;
  for (std::int64_t jr = 0; jr < nc; jr += kNR) {
    const std::int64_t cols = std::min(kNR, nc - jr);
    const std::int8_t* b_panel = b_pack + (jr / kNR) * kc4 * kNR * 4;
    for (std::int64_t ir = 0; ir < mc; ir += kMR) {
      const std::int64_t rows = std::min(kMR, mc - ir);
      const std::uint8_t* a_panel = a_pack + (ir / kMR) * kc4 * kMR * 4;
#if DNNV_QGEMM_VNNI
      micro_kernel(kc4, a_panel, b_panel, colsum + jr, c + ir * ldc + jr, ldc,
                   rows, cols);
#else
      alignas(64) std::int32_t acc[kMR * kNR];
      micro_kernel(kc4, a_panel, b_panel, acc);
      for (std::int64_t r = 0; r < rows; ++r) {
        std::int32_t* c_row = c + (ir + r) * ldc + jr;
        const std::int32_t* acc_row = acc + r * kNR;
        for (std::int64_t j = 0; j < cols; ++j) c_row[j] += acc_row[j];
      }
      (void)colsum;
#endif
    }
  }
}

std::vector<std::uint8_t>& a_pack_buffer() {
  static thread_local std::vector<std::uint8_t> buf;
  return buf;
}

std::vector<std::int8_t>& b_pack_buffer() {
  static thread_local std::vector<std::int8_t> buf;
  return buf;
}

std::vector<std::int32_t>& colsum_buffer() {
  static thread_local std::vector<std::int32_t> buf;
  return buf;
}

}  // namespace

void qgemm(std::int64_t m, std::int64_t n, std::int64_t k, const std::int8_t* a,
           const std::int8_t* b, std::int32_t* c) {
  DNNV_CHECK(m >= 0 && n >= 0 && k >= 0, "negative qgemm dims");
  DNNV_CHECK(k <= 65536, "qgemm K " << k << " exceeds the int32 overflow bound");
  std::fill(c, c + m * n, 0);
  if (m == 0 || n == 0 || k == 0) return;

  ThreadPool& pool = ThreadPool::shared();
  const bool parallel = !ThreadPool::in_worker() && pool.num_threads() > 1 &&
                        m > kMC && m * n * k >= (std::int64_t{1} << 21);
  const std::int64_t num_ic = (m + kMC - 1) / kMC;

  std::vector<std::int8_t>& b_pack = b_pack_buffer();
  b_pack.resize(static_cast<std::size_t>((kKC / 4) * kNC * 4));
  std::vector<std::int32_t>& colsum = colsum_buffer();
  colsum.assign(static_cast<std::size_t>(kNC), 0);  // tail lanes stay defined

  for (std::int64_t jc = 0; jc < n; jc += kNC) {
    const std::int64_t nc = std::min(kNC, n - jc);
    for (std::int64_t pc = 0; pc < k; pc += kKC) {
      const std::int64_t kc = std::min(kKC, k - pc);
      pack_b(b, n, pc, jc, kc, nc, b_pack.data(), colsum.data());

      auto ic_block = [&](std::size_t bi) {
        const std::int64_t ic = static_cast<std::int64_t>(bi) * kMC;
        const std::int64_t mc = std::min(kMC, m - ic);
        std::vector<std::uint8_t>& a_pack = a_pack_buffer();
        a_pack.resize(static_cast<std::size_t>(kMC * (kKC / 4) * 4));
        pack_a(a, k, ic, pc, mc, kc, a_pack.data());
        macro_block(mc, nc, kc, a_pack.data(), b_pack.data(), colsum.data(),
                    c + ic * n + jc, n);
      };
      if (parallel) {
        pool.parallel_for(static_cast<std::size_t>(num_ic), ic_block);
      } else {
        for (std::int64_t bi = 0; bi < num_ic; ++bi) {
          ic_block(static_cast<std::size_t>(bi));
        }
      }
    }
  }
}

const char* qgemm_kernel_name() {
#if DNNV_QGEMM_VNNI
  return "avx512-vnni";
#else
  return "scalar";
#endif
}

}  // namespace dnnv::quant
