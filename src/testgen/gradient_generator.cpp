#include "testgen/gradient_generator.h"

#include "nn/activation_layer.h"
#include "nn/loss.h"
#include "nn/workspace.h"
#include "tensor/batch.h"
#include "util/error.h"

namespace dnnv::testgen {

nn::Sequential GradientGenerator::masked_model(const nn::Sequential& model,
                                               const DynamicBitset& covered) {
  nn::Sequential masked = model.clone();
  DNNV_CHECK(covered.size() == static_cast<std::size_t>(masked.param_count()),
             "covered-set size mismatch");
  std::size_t bit = 0;
  for (const auto& view : masked.param_views()) {
    for (std::int64_t i = 0; i < view.size; ++i, ++bit) {
      if (covered.test(bit)) view.data[i] = 0.0f;
    }
  }
  return masked;
}

std::vector<Tensor> GradientGenerator::generate_batch(
    nn::Sequential& loss_model, const Shape& item_shape, int num_classes,
    int batch_index, Rng& rng) const {
  const Tensor batch =
      generate_batch_tensor(loss_model, item_shape, num_classes, batch_index,
                            rng);
  std::vector<Tensor> tests;
  tests.reserve(static_cast<std::size_t>(num_classes));
  for (int i = 0; i < num_classes; ++i) tests.push_back(slice_batch(batch, i));
  return tests;
}

Tensor GradientGenerator::generate_batch_tensor(nn::Sequential& loss_model,
                                                const Shape& item_shape,
                                                int num_classes,
                                                int batch_index,
                                                Rng& rng) const {
  DNNV_CHECK(num_classes > 1, "need at least two classes");
  if (options_.backward_leak != 0.0f) {
    for (std::size_t l = 0; l < loss_model.num_layers(); ++l) {
      if (auto* act = dynamic_cast<nn::ActivationLayer*>(&loss_model.layer(l))) {
        act->set_backward_leak(options_.backward_leak);
      }
    }
  }
  std::vector<std::int64_t> dims;
  dims.push_back(num_classes);
  dims.insert(dims.end(), item_shape.dims().begin(), item_shape.dims().end());
  Tensor batch{Shape(dims)};  // zeros — Algorithm 2 line 3
  if (batch_index > 0 && options_.init_stddev > 0.0f) {
    for (std::int64_t i = 0; i < batch.numel(); ++i) {
      batch[i] = static_cast<float>(
          rng.normal(0.0, static_cast<double>(options_.init_stddev)));
    }
    clamp_(batch, options_.clamp_lo, options_.clamp_hi);
  }

  std::vector<int> labels(static_cast<std::size_t>(num_classes));
  for (int i = 0; i < num_classes; ++i) labels[static_cast<std::size_t>(i)] = i;

  // Mean-reduced CE divides gradients by k; scale the step so learning_rate
  // acts on per-sample gradients (Algorithm 2 line 7 is per-sample).
  // The descent runs on the workspace engine: activations and gradient
  // buffers are allocated once and reused for all T steps.
  nn::Workspace ws;
  const float step = options_.learning_rate * static_cast<float>(num_classes);
  for (int t = 0; t < options_.steps; ++t) {
    const Tensor& logits = loss_model.forward(batch, ws);
    const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
    loss_model.zero_grads();
    const Tensor& grad_input = loss_model.backward(loss.grad_logits, ws);
    for (std::int64_t i = 0; i < batch.numel(); ++i) {
      batch[i] -= step * grad_input[i];
    }
    clamp_(batch, options_.clamp_lo, options_.clamp_hi);
  }
  loss_model.zero_grads();
  return batch;
}

GenerationResult GradientGenerator::generate(
    const nn::Sequential& model, const Shape& item_shape, int num_classes,
    cov::CoverageAccumulator& accumulator, cov::Criterion* criterion) const {
  GenerationResult result;
  Rng rng(options_.seed);
  // The historical metric when the caller brings no criterion: parameter-
  // activation coverage from Options::coverage (bit-identical path).
  std::unique_ptr<cov::Criterion> fallback;
  if (criterion == nullptr) {
    fallback = cov::make_parameter_criterion(model, options_.coverage);
    criterion = fallback.get();
  }
  const bool mask_activated =
      options_.mask_activated && criterion->parameter_indexed();

  std::vector<DynamicBitset> masks;  ///< storage reused across batches
  int batch_index = 0;
  while (static_cast<int>(result.tests.size()) + num_classes <=
         options_.max_tests) {
    nn::Sequential loss_model =
        mask_activated
            ? masked_model(model, accumulator.covered())
            : model.clone();
    const Tensor batch = generate_batch_tensor(loss_model, item_shape,
                                               num_classes, batch_index, rng);
    // Coverage is always measured on the TRUE model (Algorithm 2 validates
    // against the IP that ships, not the masked scratch copy) — one batched
    // forward for the whole synthetic batch.
    criterion->measure(batch, masks);
    for (int i = 0; i < num_classes; ++i) {
      accumulator.add(masks[static_cast<std::size_t>(i)]);
      FunctionalTest test;
      test.input = slice_batch(batch, i);
      test.source = TestSource::kSynthetic;
      result.tests.push_back(std::move(test));
      result.coverage_after.push_back(accumulator.coverage());
    }
    ++batch_index;
  }
  result.final_coverage = accumulator.coverage();
  return result;
}

}  // namespace dnnv::testgen
