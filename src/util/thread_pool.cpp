#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/error.h"

namespace dnnv {
namespace {
thread_local bool tl_in_pool_worker = false;
thread_local int tl_split_depth = 0;  // active parallel_for levels here

/// Shared state of one parallel_for: a chunk cursor every participant
/// (caller + helper tasks) claims from. Completion is counted per chunk, so
/// the caller's wait can be satisfied by any mix of participants — including
/// the caller alone when the pool is saturated by outer-level work.
struct SplitState {
  std::atomic<std::size_t> next{0};
  std::size_t num_chunks = 0;
  std::size_t chunk = 0;
  std::size_t count = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::mutex mutex;
  std::condition_variable done;
  std::size_t completed = 0;       // guarded by mutex
  std::exception_ptr first_error;  // guarded by mutex
};

/// Claims and runs chunks until the cursor is exhausted. `body` is only
/// dereferenced for successfully claimed chunks, and the caller blocks until
/// every claimed chunk is counted complete, so the reference outlives all
/// uses even when helper tasks run after the fast participants finish.
void run_split_chunks(const std::shared_ptr<SplitState>& st) {
  ++tl_split_depth;
  std::size_t finished = 0;
  std::exception_ptr error;
  for (;;) {
    const std::size_t c = st->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= st->num_chunks) break;
    const std::size_t begin = c * st->chunk;
    const std::size_t end = std::min(st->count, begin + st->chunk);
    try {
      for (std::size_t i = begin; i < end; ++i) (*st->body)(i);
    } catch (...) {
      if (!error) error = std::current_exception();
    }
    ++finished;
  }
  --tl_split_depth;
  if (finished == 0 && !error) return;  // late helper: nothing to report
  std::lock_guard<std::mutex> lock(st->mutex);
  if (error && !st->first_error) st->first_error = error;
  st->completed += finished;
  if (st->completed == st->num_chunks) st->done.notify_all();
}
}  // namespace

bool ThreadPool::in_worker() { return tl_in_pool_worker; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DNNV_CHECK(!stopping_, "submit on a stopping ThreadPool");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_all() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  // Inline when splitting cannot help: trivial counts, a one-worker pool, or
  // two parallel_for levels already active on this thread (the pool is
  // covered; a third level would only churn the queue).
  if (count == 1 || workers_.size() == 1 || tl_split_depth >= 2) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // Static partition into ~4 chunks per worker: enough slack to rebalance
  // mildly uneven chunks, while dispatching O(threads) std::functions instead
  // of one per index (the per-index scheme is measurable on per-mask
  // workloads with hundreds of thousands of cheap indices).
  auto st = std::make_shared<SplitState>();
  st->count = count;
  st->num_chunks = std::min(count, workers_.size() * 4);
  st->chunk = (count + st->num_chunks - 1) / st->num_chunks;
  st->num_chunks = (count + st->chunk - 1) / st->chunk;  // drop empty tails
  st->body = &body;
  // Helper tasks let idle workers join; the caller participates regardless,
  // so a saturated pool degrades to inline execution, never to a deadlock.
  const std::size_t occupied = in_worker() ? 1 : 0;
  const std::size_t helpers =
      std::min(st->num_chunks - 1, workers_.size() - occupied);
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([st] { run_split_chunks(st); });
  }
  run_split_chunks(st);
  std::unique_lock<std::mutex> lock(st->mutex);
  st->done.wait(lock, [&] { return st->completed == st->num_chunks; });
  if (st->first_error) std::rethrow_exception(st->first_error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

TaskGroup::~TaskGroup() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::run(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  pool_.submit([this, task = std::move(task)] {
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (--pending_ == 0) idle_.notify_all();
  });
}

void TaskGroup::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

std::size_t TaskGroup::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

void ThreadPool::worker_loop() {
  tl_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace dnnv
