// ImageNet-like out-of-distribution image pool.
#ifndef DNNV_DATA_OOD_H_
#define DNNV_DATA_OOD_H_

#include "data/dataset.h"
#include "util/rng.h"

namespace dnnv::data {

/// Structured "natural" images from a distribution unrelated to either
/// training set: multi-octave value-noise per channel, random colour grading
/// and a few random geometric fragments. Plays the role of the ImageNet pool
/// in Fig 2 (resized to the model's input, as the paper does): contains real
/// image structure, but not the training classes' features, so its validation
/// coverage should land between noise images and training samples.
class OodDataset : public Dataset {
 public:
  OodDataset(std::uint64_t seed, std::int64_t size, int channels,
             int image_size);

  std::int64_t size() const override { return size_; }
  Sample get(std::int64_t index) const override;
  Shape item_shape() const override;
  int num_classes() const override { return 0; }

 private:
  std::uint64_t seed_;
  std::int64_t size_;
  int channels_;
  int image_size_;
};

}  // namespace dnnv::data

#endif  // DNNV_DATA_OOD_H_
