// Algorithm 2 — gradient-based synthesis of new functional tests.
//
// Inputs (not parameters) are gradient-descended to minimise the
// classification loss toward each of the k classes (paper Eq. 8), producing
// synthetic training-like samples. The paper's key idea is that samples be
// classified correctly by "the network consisting of the un-activated
// parameters"; with mask_activated on, already-activated parameters are
// zeroed in a scratch model before the descent, steering synthesis toward
// parameters that still need coverage.
#ifndef DNNV_TESTGEN_GRADIENT_GENERATOR_H_
#define DNNV_TESTGEN_GRADIENT_GENERATOR_H_

#include "coverage/accumulator.h"
#include "coverage/criterion.h"
#include "coverage/parameter_coverage.h"
#include "nn/sequential.h"
#include "testgen/functional_test.h"
#include "util/rng.h"

namespace dnnv::testgen {

/// Algorithm 2 generator.
class GradientGenerator {
 public:
  struct Options {
    int max_tests = 50;           ///< Nt (rounded down to whole k-batches)
    int steps = 80;               ///< T — gradient-descent updates per batch
    float learning_rate = 0.5f;   ///< η (applied to the per-sample gradient)
    /// Zero already-activated parameters in the loss model (paper §IV-C's
    /// "network consisting of the un-activated parameters"). Off = verbatim
    /// Algorithm 2 (loss on the full model) — kept for the ablation bench.
    bool mask_activated = true;
    /// Stddev of the Gaussian init jitter for batches after the first. The
    /// first batch starts from all zeros exactly as Algorithm 2 line 3;
    /// later batches need jitter to avoid regenerating identical samples.
    float init_stddev = 0.25f;
    /// Inputs are clamped to this range after each update. Algorithm 2 as
    /// printed does NOT constrain its inputs — a black-box IP accepts any
    /// float image, and unconstrained synthesis is what lets it activate
    /// parameters behind otherwise-dead units (the paper's ~100% ceiling).
    /// The wide default keeps that power; narrow to [0,1] for suites that
    /// must look like valid sensor images.
    float clamp_lo = -4.0f;
    float clamp_hi = 4.0f;
    /// Gradient leak applied to the LOSS model's activations during
    /// synthesis so descent can wake dead units (see
    /// ActivationLayer::set_backward_leak). Coverage is always measured on
    /// the true model with exact semantics.
    float backward_leak = 0.05f;
    std::uint64_t seed = 7;
    cov::CoverageConfig coverage;  ///< criterion for the coverage trajectory
  };

  explicit GradientGenerator(Options options) : options_(options) {}

  /// Generates batches of k tests until the budget is reached, measuring
  /// coverage against `model` and updating `accumulator` after each test.
  /// `criterion` (borrowed, optional) replaces the default parameter-
  /// activation metric built from Options::coverage: synthesised batches
  /// are measured by it, and the masked-model steering applies only when
  /// it is parameter-indexed.
  GenerationResult generate(const nn::Sequential& model,
                            const Shape& item_shape, int num_classes,
                            cov::CoverageAccumulator& accumulator,
                            cov::Criterion* criterion = nullptr) const;

  /// Synthesises one batch of k inputs (class i descending loss toward label
  /// i) against `loss_model` — exposed for the combined method's probing.
  /// `batch_index` 0 starts from zeros; later batches jitter their init.
  std::vector<Tensor> generate_batch(nn::Sequential& loss_model,
                                     const Shape& item_shape, int num_classes,
                                     int batch_index, Rng& rng) const;

  /// Batch-tensor variant of generate_batch: returns the synthesised
  /// [k, item...] tensor un-sliced, ready for the batched coverage engine.
  /// The descent loop itself runs on the workspace engine (no per-step
  /// allocations).
  Tensor generate_batch_tensor(nn::Sequential& loss_model,
                               const Shape& item_shape, int num_classes,
                               int batch_index, Rng& rng) const;

  /// Builds the masked loss model: a clone of `model` with covered
  /// parameters set to zero.
  static nn::Sequential masked_model(const nn::Sequential& model,
                                     const DynamicBitset& covered);

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace dnnv::testgen

#endif  // DNNV_TESTGEN_GRADIENT_GENERATOR_H_
