#include "ip/black_box_ip.h"

namespace dnnv::ip {

std::vector<int> BlackBoxIp::predict_all(const std::vector<Tensor>& inputs) {
  std::vector<int> labels;
  labels.reserve(inputs.size());
  for (const auto& input : inputs) labels.push_back(predict(input));
  return labels;
}

}  // namespace dnnv::ip
