#include "pipeline/service.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "analysis/verifier.h"
#include "ip/device_pool.h"
#include "ip/quantized_ip.h"
#include "ip/reference_ip.h"
#include "util/error.h"

namespace dnnv::pipeline {

// ---------------------------------------------------------------------------
// Device construction
// ---------------------------------------------------------------------------

BackendKind backend_kind_from_string(const std::string& name) {
  if (name == "auto") return BackendKind::kAuto;
  if (name == "float") return BackendKind::kFloat;
  if (name == "int8") return BackendKind::kInt8;
  DNNV_THROW("unknown validation backend '" << name
                                            << "' (auto | float | int8)");
}

std::unique_ptr<ip::BlackBoxIp> make_device(const Deliverable& deliverable,
                                            BackendKind kind) {
  DNNV_CHECK(!deliverable.suite.empty(), "deliverable carries no tests");
  const Shape item_shape{std::vector<std::int64_t>(
      deliverable.suite.inputs().front().shape().dims())};
  if (kind == BackendKind::kAuto) {
    kind = deliverable.has_quant ? BackendKind::kInt8 : BackendKind::kFloat;
  }
  if (kind == BackendKind::kInt8) {
    DNNV_CHECK(deliverable.has_quant,
               "int8 backend requested but the deliverable ships no "
               "quantized artifact");
    return std::make_unique<ip::QuantizedIp>(deliverable.qmodel, item_shape);
  }
  return std::make_unique<ip::ReferenceIp>(deliverable.model, item_shape);
}

namespace detail {

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

struct RegistryEntry {
  std::string id;
  std::shared_ptr<const Deliverable> bundle;
  std::uint64_t last_used = 0;   ///< LRU clock value of the latest touch
  bool registered = false;       ///< resident in the registry map
};

/// Stream-side shared state; has its own lock so consumers never contend
/// with the scheduler.
struct StreamState {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<VerdictStream::Chunk> chunks;
  bool done = false;
  validate::Verdict verdict;
  std::exception_ptr error;
};

/// One submitted range: per-item results are folded in index order into
/// fixed-size chunks, so verdicts and per-chunk counts do not depend on
/// micro-batch composition or completion timing.
struct RunState {
  std::size_t lane_id = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunk_size = 1;
  StreamPolicy policy = StreamPolicy::kFullReplay;

  std::vector<unsigned char> have;      ///< item delivered (relative index)
  std::vector<unsigned char> mismatch;  ///< item failed (relative index)
  std::size_t next = 0;                 ///< next relative index to fold
  int chunk_mismatches = 0;
  int chunk_first_failure = -1;
  validate::Verdict verdict;  ///< accumulated over emitted chunks
  bool finished = false;

  std::promise<validate::Verdict> promise;
  std::shared_ptr<StreamState> stream;  ///< null for future-only submits
};

/// One scheduler lane: the unit of cross-session sharing. Clean sessions on
/// the same (deliverable, backend) share a lane — one label cache, one
/// device pool — while faulted or external-device sessions get a private
/// lane with a single device and no cache.
///
/// Lanes reference their registry entry by RAW pointer (plus a shared_ptr
/// to the bundle payload itself): holding the entry shared would pin its
/// use_count above 1 forever and silently disable LRU eviction. A lane only
/// dereferences entry_raw while something that owns the entry (registry,
/// handle or session) is alive.
struct Lane {
  RegistryEntry* entry_raw = nullptr;
  std::shared_ptr<const Deliverable> bundle;
  BackendKind backend = BackendKind::kFloat;
  bool shareable = false;
  /// Shareable lane of a registry-resident entry: outlives its sessions
  /// (the label cache is the reuse store). Cleared when the entry is
  /// evicted/replaced, after which the last reference tears the lane down.
  bool persistent = false;
  std::size_t micro_batch = 16;  ///< max tests per inference batch

  // Shareable lanes: replicated devices + memoized labels (the TP-ATPG-style
  // shared-pattern store: each test is applied once per deliverable+backend,
  // every subscribed session reads the outcome).
  std::unique_ptr<ip::DevicePool> devices;
  std::size_t leases_out = 0;  ///< batches holding (or acquiring) a replica
  std::vector<int> label_cache;
  std::vector<unsigned char> label_known;

  // Private lanes: exactly one device, one batch in flight at a time.
  std::unique_ptr<ip::BlackBoxIp> owned_device;
  ip::BlackBoxIp* external_device = nullptr;
  bool busy = false;

  /// index -> runs waiting for it (ordered: batches pop lowest-first).
  std::map<std::size_t, std::vector<std::shared_ptr<RunState>>> pending;
  std::size_t inflight = 0;  ///< batches currently executing on this lane
  std::size_t refs = 0;      ///< open sessions
};

/// One micro-batch handed to an executor. For shareable lanes the replica
/// lease is acquired (and returned) inside run_batch, OUTSIDE the service
/// mutex — device construction is the expensive part, and the lane cannot
/// be torn down while the batch counts as in flight.
struct BatchJob {
  std::size_t lane_id = 0;
  std::vector<std::size_t> indices;
  std::vector<std::vector<std::shared_ptr<RunState>>> subscribers;
  ip::DevicePool* pool = nullptr;     ///< shareable lanes: acquire from here
  ip::BlackBoxIp* device = nullptr;   ///< private lanes: resolved device
  std::shared_ptr<const Deliverable> bundle;
};

/// Outputs collected under the service lock, delivered after unlock.
struct Publish {
  struct StreamChunk {
    std::shared_ptr<StreamState> stream;
    VerdictStream::Chunk chunk;
  };
  struct Done {
    std::shared_ptr<RunState> run;
    validate::Verdict verdict;
    std::exception_ptr error;
  };
  std::vector<StreamChunk> chunks;
  std::vector<Done> dones;
};

struct ServiceImpl {
  explicit ServiceImpl(ValidationService::Config config);
  ~ServiceImpl();

  // Registry.
  DeliverableHandle load_file(const std::string& path, std::uint64_t key);
  DeliverableHandle adopt(Deliverable deliverable, const std::string& id);
  void evict_lru_locked();

  // Sessions.
  std::shared_ptr<Session> open_session(std::shared_ptr<ServiceImpl> self,
                                        std::shared_ptr<RegistryEntry> entry,
                                        ip::BlackBoxIp* external,
                                        SessionConfig config);
  void close_session(std::size_t lane_id);
  void gc_lane_locked(std::size_t lane_id);
  void gc_lanes_for_entry_locked(const std::shared_ptr<RegistryEntry>& entry);

  // Scheduling.
  std::shared_ptr<RunState> submit(const Session& session, std::size_t begin,
                                   std::size_t end, bool want_stream);
  void scheduler_loop();
  std::unique_ptr<BatchJob> form_batch_locked();
  void run_batch(std::unique_ptr<BatchJob> job);
  void deliver_item_locked(const std::shared_ptr<RunState>& run,
                           std::size_t index, bool mismatch, Publish& out);
  void finish_run_locked(const std::shared_ptr<RunState>& run,
                         validate::Verdict verdict, std::exception_ptr error,
                         Publish& out);
  void purge_run_locked(const std::shared_ptr<RunState>& run);
  static void publish(Publish& out);
  void shutdown();

  ValidationService::Config config;
  ThreadPool* pool = nullptr;

  mutable std::mutex mutex;
  std::condition_variable scheduler_cv;
  bool stopping = false;

  std::uint64_t lru_tick = 0;
  std::unordered_map<std::string, std::shared_ptr<RegistryEntry>> registry;

  std::map<std::size_t, std::unique_ptr<Lane>> lanes;
  std::size_t next_lane_id = 0;
  std::size_t lane_cursor = 0;
  std::size_t pending_total = 0;  ///< indices queued across all lanes
  std::size_t inflight = 0;       ///< batches executing
  std::size_t active_runs = 0;
  /// Publish batches collected under the lock but not yet delivered to
  /// futures/streams. drain() waits on this too, so "scheduler quiet"
  /// implies every finished run's promise has actually been fulfilled.
  std::size_t publishing = 0;

  ValidationService::Stats stats;

  TaskGroup executors;
  std::thread scheduler;
};

ServiceImpl::ServiceImpl(ValidationService::Config config_in)
    : config(config_in),
      pool(config_in.pool != nullptr ? config_in.pool : &ThreadPool::shared()),
      executors(*pool) {
  DNNV_CHECK(config.micro_batch > 0, "micro_batch must be positive");
  if (config.max_inflight_batches == 0) config.max_inflight_batches = 1;
  scheduler = std::thread([this] { scheduler_loop(); });
}

ServiceImpl::~ServiceImpl() {
  if (scheduler.joinable()) shutdown();
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

void ServiceImpl::evict_lru_locked() {
  // Evict least-recently-used UNPINNED entries (registry holds the only
  // reference) until within capacity. Pinned entries may exceed it.
  while (registry.size() > config.max_cached_deliverables) {
    auto victim = registry.end();
    for (auto it = registry.begin(); it != registry.end(); ++it) {
      if (it->second.use_count() != 1) continue;  // pinned by handle/session
      if (victim == registry.end() ||
          it->second->last_used < victim->second->last_used) {
        victim = it;
      }
    }
    if (victim == registry.end()) return;  // everything pinned
    victim->second->registered = false;
    gc_lanes_for_entry_locked(victim->second);
    registry.erase(victim);
    ++stats.evictions;
  }
}

DeliverableHandle ServiceImpl::load_file(const std::string& path,
                                         std::uint64_t key) {
  {
    std::lock_guard<std::mutex> lock(mutex);
    DNNV_CHECK(!stopping, "load_file on a stopped ValidationService");
    ++stats.loads;
    auto it = registry.find(path);
    if (it != registry.end()) {
      ++stats.hits;
      it->second->last_used = ++lru_tick;
      return DeliverableHandle(it->second);
    }
  }
  // Parse outside the lock (decode + de-obfuscation are the expensive part).
  auto bundle =
      std::make_shared<const Deliverable>(Deliverable::load_file(path, key));
  std::lock_guard<std::mutex> lock(mutex);
  auto it = registry.find(path);
  if (it != registry.end()) {  // raced with another loader: reuse theirs
    ++stats.hits;
    it->second->last_used = ++lru_tick;
    return DeliverableHandle(it->second);
  }
  auto entry = std::make_shared<RegistryEntry>();
  entry->id = path;
  entry->bundle = std::move(bundle);
  entry->last_used = ++lru_tick;
  entry->registered = true;
  registry.emplace(path, entry);
  evict_lru_locked();
  return DeliverableHandle(std::move(entry));
}

DeliverableHandle ServiceImpl::adopt(Deliverable deliverable,
                                     const std::string& id) {
  auto bundle = std::make_shared<const Deliverable>(std::move(deliverable));
  DNNV_CHECK(!bundle->suite.empty(), "deliverable carries no tests");
  // In-memory bundles bypass Deliverable::load_file, so run the same
  // semantic gate here before the registry starts serving sessions from it.
  analysis::require_valid(analysis::verify_deliverable(*bundle),
                          "service adopt");
  std::lock_guard<std::mutex> lock(mutex);
  DNNV_CHECK(!stopping, "adopt on a stopped ValidationService");
  ++stats.loads;
  auto entry = std::make_shared<RegistryEntry>();
  entry->id = id;
  entry->bundle = std::move(bundle);
  entry->last_used = ++lru_tick;
  entry->registered = true;
  auto it = registry.find(id);
  if (it != registry.end()) {  // replacing: the old entry loses residency
    it->second->registered = false;
    gc_lanes_for_entry_locked(it->second);
    it->second = entry;
  } else {
    registry.emplace(id, entry);
  }
  evict_lru_locked();
  return DeliverableHandle(std::move(entry));
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

std::shared_ptr<Session> ServiceImpl::open_session(
    std::shared_ptr<ServiceImpl> self, std::shared_ptr<RegistryEntry> entry,
    ip::BlackBoxIp* external, SessionConfig session_config) {
  DNNV_CHECK(entry != nullptr && entry->bundle != nullptr,
             "open_session on an invalid deliverable handle");
  const Deliverable& bundle = *entry->bundle;
  BackendKind backend = session_config.backend;
  if (backend == BackendKind::kAuto) {
    backend = bundle.has_quant ? BackendKind::kInt8 : BackendKind::kFloat;
  }
  DNNV_CHECK(backend != BackendKind::kInt8 || bundle.has_quant,
             "int8 backend requested but the deliverable ships no quantized "
             "artifact");
  DNNV_CHECK(external == nullptr || session_config.faults.empty(),
             "faults cannot be injected into a caller-supplied device");

  // Faulted sessions build their private tampered device up front (outside
  // the service lock: device construction is the expensive part).
  std::unique_ptr<ip::BlackBoxIp> faulted;
  if (!session_config.faults.empty()) {
    DNNV_CHECK(backend == BackendKind::kInt8,
               "fault injection needs the int8 backend (the faults address "
               "the int8 weight memory)");
    faulted = make_device(bundle, backend);
    auto* quantized = dynamic_cast<ip::QuantizedIp*>(faulted.get());
    DNNV_CHECK(quantized != nullptr, "faultable device must be a QuantizedIp");
    for (const auto& fault : session_config.faults) {
      quantized->flip_bit(fault.address, fault.bit);
    }
  }

  std::lock_guard<std::mutex> lock(mutex);
  DNNV_CHECK(!stopping, "open_session on a stopped ValidationService");
  entry->last_used = ++lru_tick;

  const bool shareable = external == nullptr && faulted == nullptr;
  std::size_t lane_id = next_lane_id;
  Lane* lane = nullptr;
  if (shareable) {
    // Reuse only persistent lanes: their entry is registry-resident, so the
    // raw-pointer match cannot hit a recycled allocation.
    for (auto& [id, candidate] : lanes) {
      if (candidate->shareable && candidate->persistent &&
          candidate->entry_raw == entry.get() &&
          candidate->backend == backend) {
        lane_id = id;
        lane = candidate.get();
        break;
      }
    }
  }
  if (lane == nullptr) {
    auto fresh = std::make_unique<Lane>();
    fresh->entry_raw = entry.get();
    fresh->bundle = entry->bundle;
    fresh->backend = backend;
    fresh->shareable = shareable;
    fresh->persistent = shareable && entry->registered;
    fresh->micro_batch = session_config.micro_batch > 0
                             ? session_config.micro_batch
                             : config.micro_batch;
    if (shareable) {
      fresh->devices = std::make_unique<ip::DevicePool>(
          [bundle_ptr = entry->bundle, backend] {
            return make_device(*bundle_ptr, backend);
          },
          std::max<std::size_t>(1, config.devices_per_lane));
      fresh->label_cache.assign(bundle.suite.size(), -1);
      fresh->label_known.assign(bundle.suite.size(), 0);
    } else {
      fresh->owned_device = std::move(faulted);
      fresh->external_device = external;
    }
    lane_id = next_lane_id++;
    lane = fresh.get();
    lanes.emplace(lane_id, std::move(fresh));
  }
  ++lane->refs;
  session_config.backend = backend;
  return std::shared_ptr<Session>(new Session(
      std::move(self), std::move(entry), std::move(session_config), lane_id));
}

void ServiceImpl::close_session(std::size_t lane_id) {
  std::lock_guard<std::mutex> lock(mutex);
  auto it = lanes.find(lane_id);
  if (it == lanes.end()) return;
  --it->second->refs;
  gc_lane_locked(lane_id);
}

void ServiceImpl::gc_lane_locked(std::size_t lane_id) {
  auto it = lanes.find(lane_id);
  if (it == lanes.end()) return;
  Lane& lane = *it->second;
  if (lane.refs != 0 || !lane.pending.empty() || lane.inflight != 0 ||
      lane.busy) {
    return;  // still referenced or still working
  }
  // Persistent lanes (shared lanes of registry-resident deliverables)
  // outlive their sessions: the label cache IS the cross-session
  // pattern-reuse store. Private and unregistered (wrapper) lanes die with
  // their last session.
  if (lane.persistent) return;
  lanes.erase(it);
}

void ServiceImpl::gc_lanes_for_entry_locked(
    const std::shared_ptr<RegistryEntry>& entry) {
  for (auto it = lanes.begin(); it != lanes.end();) {
    const std::size_t lane_id = it->first;
    ++it;
    Lane& lane = *lanes.at(lane_id);
    if (lane.entry_raw == entry.get()) {
      lane.persistent = false;  // entry leaving the registry
      gc_lane_locked(lane_id);
    }
  }
}

// ---------------------------------------------------------------------------
// Submit + result folding
// ---------------------------------------------------------------------------

std::shared_ptr<RunState> ServiceImpl::submit(const Session& session,
                                              std::size_t begin,
                                              std::size_t end,
                                              bool want_stream) {
  const validate::TestSuite& suite = session.entry_->bundle->suite;
  DNNV_CHECK(begin < end && end <= suite.size(),
             "submit range [" << begin << ", " << end
                              << ") out of suite range " << suite.size());
  if (session.config_.budget > 0) {
    end = std::min(end, begin + session.config_.budget);
  }

  auto run = std::make_shared<RunState>();
  run->lane_id = session.lane_;
  run->begin = begin;
  run->end = end;
  run->chunk_size = session.config_.chunk_size > 0 ? session.config_.chunk_size
                                                   : config.micro_batch;
  run->policy = session.config_.policy;
  run->have.assign(end - begin, 0);
  run->mismatch.assign(end - begin, 0);
  if (want_stream) run->stream = std::make_shared<StreamState>();

  Publish out;
  {
    std::lock_guard<std::mutex> lock(mutex);
    DNNV_CHECK(!stopping, "submit on a stopped ValidationService");
    auto it = lanes.find(session.lane_);
    DNNV_CHECK(it != lanes.end(), "session lane vanished");
    Lane& lane = *it->second;
    ++active_runs;
    const auto& golden = suite.golden_labels();
    for (std::size_t index = begin; index < end && !run->finished; ++index) {
      if (lane.shareable && lane.label_known[index]) {
        // Cross-session reuse: this pattern was already applied to this
        // deliverable+backend — serve the memoized outcome.
        ++stats.cache_served;
        deliver_item_locked(run, index,
                            lane.label_cache[index] != golden[index], out);
        continue;
      }
      auto [entry_it, inserted] = lane.pending.try_emplace(index);
      entry_it->second.push_back(run);
      if (inserted) ++pending_total;
    }
    ++publishing;
  }
  scheduler_cv.notify_all();
  publish(out);
  {
    std::lock_guard<std::mutex> lock(mutex);
    --publishing;
  }
  scheduler_cv.notify_all();
  return run;
}

void ServiceImpl::deliver_item_locked(const std::shared_ptr<RunState>& run,
                                      std::size_t index, bool mismatch,
                                      Publish& out) {
  if (run->finished) return;
  const std::size_t rel = index - run->begin;
  if (run->have[rel]) return;
  run->have[rel] = 1;
  run->mismatch[rel] = mismatch ? 1 : 0;

  // Fold delivered items in index order into fixed chunks: [begin + k*C,
  // begin + (k+1)*C). Determinism: chunk boundaries depend only on the run,
  // never on which micro-batch carried the item or when it landed.
  const std::size_t len = run->end - run->begin;
  while (!run->finished && run->next < len && run->have[run->next]) {
    if (run->mismatch[run->next]) {
      if (run->chunk_first_failure < 0) {
        run->chunk_first_failure = static_cast<int>(run->begin + run->next);
      }
      ++run->chunk_mismatches;
    }
    ++run->next;
    const bool boundary =
        run->next == len || (run->next % run->chunk_size) == 0;
    if (!boundary) continue;

    VerdictStream::Chunk chunk;
    chunk.begin =
        run->begin + ((run->next - 1) / run->chunk_size) * run->chunk_size;
    chunk.end = run->begin + run->next;
    chunk.mismatches = run->chunk_mismatches;
    chunk.first_failure = run->chunk_first_failure;

    if (run->policy == StreamPolicy::kEarlyExit && run->chunk_mismatches > 0) {
      // First TAMPERED evidence: report the early-exit verdict contract of
      // validate_ip(..., early_exit=true) — the first mismatch, counted as
      // one failure, after "running" every test up to it.
      validate::Verdict verdict;
      verdict.passed = false;
      verdict.first_failure = run->chunk_first_failure;
      verdict.num_failures = 1;
      verdict.tests_run = static_cast<int>(
          static_cast<std::size_t>(run->chunk_first_failure) - run->begin + 1);
      chunk.last = true;
      if (run->stream) out.chunks.push_back({run->stream, chunk});
      finish_run_locked(run, verdict, nullptr, out);
      purge_run_locked(run);
      return;
    }

    validate::ChunkVerdict fold;
    fold.begin = chunk.begin;
    fold.end = chunk.end;
    fold.mismatches = chunk.mismatches;
    fold.first_failure = chunk.first_failure;
    validate::accumulate_chunk(run->verdict, fold);
    run->chunk_mismatches = 0;
    run->chunk_first_failure = -1;
    chunk.last = run->next == len;
    if (run->stream) out.chunks.push_back({run->stream, chunk});
    if (chunk.last) finish_run_locked(run, run->verdict, nullptr, out);
  }
}

void ServiceImpl::finish_run_locked(const std::shared_ptr<RunState>& run,
                                    validate::Verdict verdict,
                                    std::exception_ptr error, Publish& out) {
  if (run->finished) return;
  run->finished = true;
  --active_runs;
  out.dones.push_back({run, verdict, error});
  scheduler_cv.notify_all();
}

void ServiceImpl::purge_run_locked(const std::shared_ptr<RunState>& run) {
  auto it = lanes.find(run->lane_id);
  if (it == lanes.end()) return;
  Lane& lane = *it->second;
  for (auto pending_it = lane.pending.begin();
       pending_it != lane.pending.end();) {
    auto& subscribers = pending_it->second;
    subscribers.erase(std::remove(subscribers.begin(), subscribers.end(), run),
                      subscribers.end());
    if (subscribers.empty()) {
      pending_it = lane.pending.erase(pending_it);
      --pending_total;
    } else {
      ++pending_it;
    }
  }
}

void ServiceImpl::publish(Publish& out) {
  for (auto& item : out.chunks) {
    {
      std::lock_guard<std::mutex> lock(item.stream->mutex);
      item.stream->chunks.push_back(item.chunk);
    }
    item.stream->cv.notify_all();
  }
  for (auto& done : out.dones) {
    if (done.run->stream) {
      {
        std::lock_guard<std::mutex> lock(done.run->stream->mutex);
        done.run->stream->done = true;
        done.run->stream->verdict = done.verdict;
        done.run->stream->error = done.error;
      }
      done.run->stream->cv.notify_all();
    }
    if (done.error) {
      done.run->promise.set_exception(done.error);
    } else {
      done.run->promise.set_value(done.verdict);
    }
  }
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

std::unique_ptr<BatchJob> ServiceImpl::form_batch_locked() {
  if (lanes.empty() || pending_total == 0) return nullptr;
  // Round-robin over lanes for fairness across deliverables/sessions.
  auto start = lanes.lower_bound(lane_cursor);
  if (start == lanes.end()) start = lanes.begin();
  auto it = start;
  for (std::size_t scanned = 0; scanned < lanes.size(); ++scanned) {
    Lane& lane = *it->second;
    const std::size_t lane_id = it->first;
    ++it;
    if (it == lanes.end()) it = lanes.begin();
    if (lane.pending.empty()) continue;

    auto job = std::make_unique<BatchJob>();
    job->lane_id = lane_id;
    job->bundle = lane.bundle;
    if (lane.shareable) {
      // Reserve a replica slot; the (possibly constructing) acquire happens
      // in run_batch, outside this mutex.
      if (lane.leases_out >= std::max<std::size_t>(1, config.devices_per_lane)) {
        continue;  // every replica slot busy; try another lane
      }
      ++lane.leases_out;
      job->pool = lane.devices.get();
    } else {
      if (lane.busy) continue;
      job->device = lane.external_device != nullptr ? lane.external_device
                                                    : lane.owned_device.get();
      lane.busy = true;
    }

    while (!lane.pending.empty() &&
           job->indices.size() < lane.micro_batch) {
      auto pending_it = lane.pending.begin();
      if (!pending_it->second.empty()) {
        job->indices.push_back(pending_it->first);
        job->subscribers.push_back(std::move(pending_it->second));
      }
      lane.pending.erase(pending_it);
      --pending_total;
    }
    if (job->indices.empty()) {
      if (lane.shareable) {
        --lane.leases_out;
      } else {
        lane.busy = false;
      }
      continue;
    }
    ++lane.inflight;
    lane_cursor = lane_id + 1;
    return job;
  }
  return nullptr;
}

void ServiceImpl::run_batch(std::unique_ptr<BatchJob> job) {
  std::vector<int> labels;
  std::exception_ptr error;
  {
    // Acquire, infer and release the replica with no service lock held:
    // first-touch device construction and the forward pass are the
    // expensive parts. The lane stays alive — its inflight count is ours.
    ip::DevicePool::Lease lease;
    try {
      ip::BlackBoxIp* device = job->device;
      if (job->pool != nullptr) {
        lease = job->pool->acquire();
        device = lease.get();
      }
      DNNV_CHECK(device != nullptr, "no device available for micro-batch");
      std::vector<Tensor> inputs;
      inputs.reserve(job->indices.size());
      for (const std::size_t index : job->indices) {
        inputs.push_back(job->bundle->suite.inputs()[index]);
      }
      labels = device->predict_all(inputs);
      DNNV_CHECK(labels.size() == job->indices.size(),
                 "backend returned " << labels.size() << " labels for "
                                     << job->indices.size() << " tests");
    } catch (...) {
      error = std::current_exception();
    }
  }

  Publish out;
  {
    std::lock_guard<std::mutex> lock(mutex);
    auto lane_it = lanes.find(job->lane_id);
    Lane* lane = lane_it != lanes.end() ? lane_it->second.get() : nullptr;
    const auto& golden = job->bundle->suite.golden_labels();
    ++stats.batches;
    if (!error) stats.predicted += job->indices.size();
    for (std::size_t i = 0; i < job->indices.size(); ++i) {
      const std::size_t index = job->indices[i];
      if (!error && lane != nullptr && lane->shareable) {
        lane->label_cache[index] = labels[i];
        lane->label_known[index] = 1;
        // Serve subscribers that queued this index while the batch was in
        // flight (their submit raced the pop), so a test is never inferred
        // twice on one lane.
        auto raced = lane->pending.find(index);
        if (raced != lane->pending.end()) {
          auto raced_subscribers = std::move(raced->second);
          lane->pending.erase(raced);
          --pending_total;
          for (const auto& run : raced_subscribers) {
            if (run->finished) continue;
            ++stats.cache_served;
            deliver_item_locked(run, index, labels[i] != golden[index], out);
          }
        }
      }
      for (const auto& run : job->subscribers[i]) {
        if (run->finished) continue;
        if (error) {
          finish_run_locked(run, {}, error, out);
          purge_run_locked(run);
        } else {
          deliver_item_locked(run, index, labels[i] != golden[index], out);
        }
      }
    }
    if (lane != nullptr) {
      if (lane->shareable) {
        --lane->leases_out;
      } else {
        lane->busy = false;
      }
      --lane->inflight;
      if (lane->refs == 0) gc_lane_locked(job->lane_id);
    }
    --inflight;
    ++publishing;
  }
  scheduler_cv.notify_all();
  publish(out);
  {
    std::lock_guard<std::mutex> lock(mutex);
    --publishing;
  }
  scheduler_cv.notify_all();
}

void ServiceImpl::scheduler_loop() {
  std::unique_lock<std::mutex> lock(mutex);
  for (;;) {
    if (stopping && pending_total == 0 && inflight == 0) return;
    if (inflight >= config.max_inflight_batches) {
      scheduler_cv.wait(lock);
      continue;
    }
    std::unique_ptr<BatchJob> job = form_batch_locked();
    if (job == nullptr) {
      if (!(stopping && pending_total == 0 && inflight == 0)) {
        scheduler_cv.wait(lock);
      }
      continue;
    }
    ++inflight;
    const bool async = config.max_inflight_batches > 1 &&
                       pool->num_threads() >= 2 && !ThreadPool::in_worker();
    lock.unlock();
    if (async) {
      // BatchJob is moved into the executor; run_batch re-locks to fold
      // results and returns the device lease.
      auto* raw = job.release();
      executors.run([this, raw] { run_batch(std::unique_ptr<BatchJob>(raw)); });
    } else {
      run_batch(std::move(job));
    }
    lock.lock();
  }
}

void ServiceImpl::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex);
    stopping = true;
  }
  scheduler_cv.notify_all();
  scheduler.join();
  executors.wait();
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Public surfaces
// ---------------------------------------------------------------------------

const std::string& DeliverableHandle::id() const {
  DNNV_CHECK(entry_ != nullptr, "empty DeliverableHandle");
  return entry_->id;
}

const Deliverable& DeliverableHandle::deliverable() const {
  DNNV_CHECK(entry_ != nullptr, "empty DeliverableHandle");
  return *entry_->bundle;
}

bool VerdictStream::next(Chunk& chunk) {
  DNNV_CHECK(state_ != nullptr, "empty VerdictStream");
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock,
                  [this] { return !state_->chunks.empty() || state_->done; });
  if (state_->chunks.empty()) return false;
  chunk = state_->chunks.front();
  state_->chunks.pop_front();
  return true;
}

validate::Verdict VerdictStream::verdict() {
  DNNV_CHECK(state_ != nullptr, "empty VerdictStream");
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [this] { return state_->done; });
  if (state_->error) std::rethrow_exception(state_->error);
  return state_->verdict;
}

Session::Session(std::shared_ptr<detail::ServiceImpl> service,
                 std::shared_ptr<detail::RegistryEntry> entry,
                 SessionConfig config, std::size_t lane)
    : service_(std::move(service)),
      entry_(std::move(entry)),
      config_(std::move(config)),
      lane_(lane) {}

Session::~Session() { service_->close_session(lane_); }

std::size_t Session::suite_size() const {
  return entry_->bundle->suite.size();
}

const Deliverable& Session::deliverable() const { return *entry_->bundle; }

std::future<validate::Verdict> Session::submit() {
  return submit(0, suite_size());
}

std::future<validate::Verdict> Session::submit(std::size_t begin,
                                               std::size_t end) {
  auto run = service_->submit(*this, begin, end, /*want_stream=*/false);
  return run->promise.get_future();
}

VerdictStream Session::stream() { return stream(0, suite_size()); }

VerdictStream Session::stream(std::size_t begin, std::size_t end) {
  auto run = service_->submit(*this, begin, end, /*want_stream=*/true);
  return VerdictStream(run->stream);
}

ValidationService::ValidationService() : ValidationService(Config()) {}

ValidationService::ValidationService(Config config)
    : impl_(std::make_shared<detail::ServiceImpl>(config)) {}

ValidationService::~ValidationService() {
  if (impl_ != nullptr) impl_->shutdown();
}

ValidationService& ValidationService::shared() {
  static ValidationService service;
  return service;
}

DeliverableHandle ValidationService::load_file(const std::string& path,
                                               std::uint64_t key) {
  return impl_->load_file(path, key);
}

DeliverableHandle ValidationService::adopt(Deliverable deliverable,
                                           const std::string& id) {
  return impl_->adopt(std::move(deliverable), id);
}

std::shared_ptr<Session> ValidationService::open_session(
    const DeliverableHandle& handle, SessionConfig config) {
  return impl_->open_session(impl_, handle.entry_, nullptr, std::move(config));
}

std::shared_ptr<Session> ValidationService::open_session(
    std::shared_ptr<const Deliverable> bundle, SessionConfig config) {
  auto entry = std::make_shared<detail::RegistryEntry>();
  entry->id = "<unregistered>";
  entry->bundle = std::move(bundle);
  return impl_->open_session(impl_, std::move(entry), nullptr,
                             std::move(config));
}

std::shared_ptr<Session> ValidationService::open_session(
    const DeliverableHandle& handle, ip::BlackBoxIp& device,
    SessionConfig config) {
  return impl_->open_session(impl_, handle.entry_, &device, std::move(config));
}

std::shared_ptr<Session> ValidationService::open_session(
    std::shared_ptr<const Deliverable> bundle, ip::BlackBoxIp& device,
    SessionConfig config) {
  auto entry = std::make_shared<detail::RegistryEntry>();
  entry->id = "<unregistered>";
  entry->bundle = std::move(bundle);
  return impl_->open_session(impl_, std::move(entry), &device,
                             std::move(config));
}

std::size_t ValidationService::resident_deliverables() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->registry.size();
}

void ValidationService::drain() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  // finish_run_locked and run_batch both notify scheduler_cv after their
  // counters drop, so this wakes exactly when the scheduler goes empty.
  // `publishing` covers the window between a run finishing (counters at
  // zero) and its promise/stream actually being fulfilled outside the
  // lock — after drain() returns, every verdict future is ready.
  impl_->scheduler_cv.wait(lock, [this] {
    return impl_->pending_total == 0 && impl_->inflight == 0 &&
           impl_->active_runs == 0 && impl_->publishing == 0;
  });
}

std::size_t ValidationService::evict_unpinned() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::size_t evicted = 0;
  for (auto it = impl_->registry.begin(); it != impl_->registry.end();) {
    if (it->second.use_count() == 1) {  // registry holds the only reference
      it->second->registered = false;
      impl_->gc_lanes_for_entry_locked(it->second);
      it = impl_->registry.erase(it);
      ++impl_->stats.evictions;
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

SuiteCoverage ValidationService::suite_coverage(
    const DeliverableHandle& handle) const {
  DNNV_CHECK(handle.valid(), "invalid deliverable handle");
  // The handle pins the entry, so the bundle is safe to read without the
  // service lock; measurement itself is criterion work, not scheduler work.
  return pipeline::suite_coverage(handle.deliverable());
}

fault::FaultQualification ValidationService::fault_coverage(
    const DeliverableHandle& handle) const {
  DNNV_CHECK(handle.valid(), "invalid deliverable handle");
  // Same pinning argument as suite_coverage(): the handle keeps the bundle
  // alive, and simulation only reads it.
  return pipeline::fault_coverage(handle.deliverable());
}

ValidationService::Stats ValidationService::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->stats;
}

}  // namespace dnnv::pipeline
