// Shared implementation of the Tables II/III detection-rate experiments.
#ifndef DNNV_BENCH_DETECTION_COMMON_H_
#define DNNV_BENCH_DETECTION_COMMON_H_

#include <iostream>
#include <string>
#include <vector>

#include "attack/gda.h"
#include "attack/random_perturbation.h"
#include "attack/sba.h"
#include "bench/bench_common.h"
#include "coverage/parameter_coverage.h"
#include "testgen/generator.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "validate/backend.h"
#include "validate/detection.h"
#include "validate/test_suite.h"

namespace dnnv::bench {

/// The two compared criteria, by generator-registry name: the
/// neuron-coverage baseline ([11]-style) and the paper's proposed combined
/// parameter-coverage method (§IV-D).
inline constexpr const char* kBaselineMethod = "neuron";
inline constexpr const char* kProposedMethod = "combined";

/// Generator config shared by every method in the detection tables.
inline testgen::GeneratorConfig detection_table_config(
    const exp::TrainedModel& trained, int max_tests) {
  testgen::GeneratorConfig config;
  config.max_tests = max_tests;
  config.coverage = trained.coverage;
  config.gradient.steps = 25;
  return config;
}

/// Builds one method's qualified suite through the registry. `coverage_out`
/// receives the method's own final coverage metric (VC for parameter-
/// coverage methods, neuron coverage for the baseline).
inline validate::TestSuite build_method_suite(
    const std::string& method, const exp::TrainedModel& trained,
    const data::MaterializedData& pool, int max_tests, double* coverage_out) {
  cov::CoverageAccumulator accumulator(
      static_cast<std::size_t>(trained.model.param_count()));
  testgen::GenContext ctx;
  ctx.model = &trained.model;
  ctx.pool = &pool.images;
  ctx.item_shape = trained.item_shape;
  ctx.num_classes = trained.num_classes;
  ctx.accumulator = &accumulator;
  const auto result =
      testgen::make_generator(method, detection_table_config(trained, max_tests))
          ->generate(ctx);
  if (coverage_out != nullptr) *coverage_out = result.final_coverage;
  auto vendor_model = trained.model.clone();
  return validate::TestSuite::create(vendor_model, result.tests);
}

/// Runs one full detection table (paper Table II or III): builds the
/// neuron-coverage baseline suite and the proposed parameter-coverage suite
/// (both 50 tests, nested) via the generator registry, runs SBA / GDA /
/// random perturbation campaigns on the float execution backend, and prints
/// detection rates for N in {10..50}.
inline int run_detection_table(exp::TrainedModel& trained,
                               const data::MaterializedData& pool,
                               const data::MaterializedData& victims,
                               const CliArgs& args, const char* paper_rows) {
  const int trials = args.get_int("trials", 600);
  const int max_tests = 50;
  std::cout << "model: " << trained.name << ", trials per attack: " << trials
            << " (paper: 10000), suites: " << max_tests << " tests\n\n";

  Stopwatch timer;

  // Proposed suite: combined parameter-coverage generation (paper §IV-D).
  double proposed_coverage = 0.0;
  const validate::TestSuite proposed_suite = build_method_suite(
      kProposedMethod, trained, pool, max_tests, &proposed_coverage);
  std::cout << "proposed suite: VC = " << format_percent(proposed_coverage)
            << " (" << timer.elapsed_seconds() << "s)\n";

  // Baseline suite: neuron-coverage selection ([11]-style).
  timer.reset();
  double neuron_coverage = 0.0;
  const validate::TestSuite neuron_suite = build_method_suite(
      kBaselineMethod, trained, pool, max_tests, &neuron_coverage);
  std::cout << "baseline suite: neuron coverage = "
            << format_percent(neuron_coverage) << " ("
            << timer.elapsed_seconds() << "s)\n\n";

  // Attacks (Liu et al. ICCAD'17 + random corruption).
  attack::SingleBiasAttack sba;
  attack::GradientDescentAttack gda;
  attack::RandomPerturbation random_attack;

  validate::DetectionConfig config;
  config.trials = trials;
  config.test_counts = {10, 20, 30, 40, 50};
  config.seed = 20230517;

  // The deployed target: both suites replay on the same float reference
  // backend (bench_table* measure the paper's float setting; swap in
  // validate::Int8Backend to reproduce the tables on the integer engine).
  validate::FloatReferenceBackend backend(trained.model);

  struct Cell {
    validate::DetectionOutcome neuron;
    validate::DetectionOutcome proposed;
  };
  std::vector<std::pair<std::string, Cell>> columns;
  for (const auto* atk :
       std::initializer_list<const attack::Attack*>{&sba, &gda, &random_attack}) {
    timer.reset();
    Cell cell;
    // Victims come from HELD-OUT data: an attacker targets fielded inputs,
    // not the vendor's test-generation pool (and baseline tests must not
    // accidentally contain the victim itself).
    cell.neuron = run_detection(trained.model, neuron_suite, backend, *atk,
                                victims.images, config);
    cell.proposed = run_detection(trained.model, proposed_suite, backend, *atk,
                                  victims.images, config);
    std::cout << "attack " << atk->name() << ": " << timer.elapsed_seconds()
              << "s (dropped trials: neuron " << cell.neuron.dropped_trials
              << ", proposed " << cell.proposed.dropped_trials << ")\n";
    columns.emplace_back(atk->name(), std::move(cell));
  }

  std::cout << "\n";
  TablePrinter table({"Tests", "SBA (neuron)", "GDA (neuron)", "Rand (neuron)",
                      "SBA (proposed)", "GDA (proposed)", "Rand (proposed)"});
  for (std::size_t row = 0; row < config.test_counts.size(); ++row) {
    std::vector<std::string> cells;
    cells.push_back("N=" + std::to_string(config.test_counts[row]));
    for (const auto& [name, cell] : columns) {
      cells.push_back(format_percent(cell.neuron.rate_per_count[row]));
    }
    for (const auto& [name, cell] : columns) {
      cells.push_back(format_percent(cell.proposed.rate_per_count[row]));
    }
    table.add_row(std::move(cells));
  }
  table.print(std::cout);
  std::cout << "\npaper reference rows:\n" << paper_rows;

  // Shape check: proposed beats baseline at every N for every attack.
  bool proposed_wins = true;
  for (std::size_t row = 0; row < config.test_counts.size(); ++row) {
    for (const auto& [name, cell] : columns) {
      if (cell.proposed.rate_per_count[row] + 1e-9 <
          cell.neuron.rate_per_count[row]) {
        proposed_wins = false;
      }
    }
  }
  std::cout << "\nproposed >= neuron baseline at every cell: "
            << (proposed_wins ? "YES" : "NO") << "\n";
  return 0;
}

}  // namespace dnnv::bench

#endif  // DNNV_BENCH_DETECTION_COMMON_H_
