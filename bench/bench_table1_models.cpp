// Table I — the two evaluation models and their accuracy.
//
// Paper: MNIST/Tanh CNN at 98.9% and CIFAR-10/ReLU CNN at 84.26% accuracy.
// Here: the same topologies (conv-conv-pool ×2 -> dense -> logits) trained on
// the synthetic stand-in datasets (see DESIGN.md §2); channel counts are
// CPU-scaled by default (--paper-scale builds Table I's exact widths).
#include <iostream>

#include "bench/bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dnnv;
  const CliArgs args(argc, argv, {"paper-scale", "retrain"});
  bench::banner("bench_table1_models", "Table I — model architectures & accuracy");

  const auto options = bench::zoo_options(args);
  auto mnist = exp::mnist_tanh(options);
  auto cifar = exp::cifar_relu(options);

  TablePrinter table({"model", "dataset (substitute)", "activation",
                      "parameters", "train acc", "test acc", "paper test acc"});
  table.add_row({mnist.name, "DigitsDataset (MNIST)", "tanh",
                 std::to_string(mnist.model.param_count()),
                 format_percent(mnist.train_accuracy),
                 format_percent(mnist.test_accuracy), "98.9%"});
  table.add_row({cifar.name, "ShapesDataset (CIFAR-10)", "relu",
                 std::to_string(cifar.model.param_count()),
                 format_percent(cifar.train_accuracy),
                 format_percent(cifar.test_accuracy), "84.26%"});
  table.print(std::cout);

  std::cout << "\narchitectures:\n";
  std::cout << "  " << mnist.name << ": " << mnist.model.summary() << "\n";
  std::cout << "  " << cifar.name << ": " << cifar.model.summary() << "\n";
  return 0;
}
