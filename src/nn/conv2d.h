// 2-D convolution layer (im2col + GEMM).
#ifndef DNNV_NN_CONV2D_H_
#define DNNV_NN_CONV2D_H_

#include "nn/init.h"
#include "nn/layer.h"
#include "nn/workspace.h"

namespace dnnv::nn {

/// Cross-correlation over NCHW inputs. Weights are stored flattened as
/// [out_channels, in_channels*kh*kw] so forward/backward are single GEMMs per
/// batch item over the im2col buffer.
class Conv2d : public Layer {
 public:
  struct Config {
    std::int64_t in_channels = 0;
    std::int64_t out_channels = 0;
    std::int64_t kernel = 3;  ///< square kernel edge
    std::int64_t stride = 1;
    std::int64_t pad = 0;
  };

  Conv2d(const Config& config, Rng& rng,
         InitKind init = InitKind::kKaimingNormal);

  std::string kind() const override { return "conv2d"; }
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Tensor sensitivity_backward(const Tensor& sens_output) override;
  void forward_into(std::size_t index, const Tensor& input, Tensor& output,
                    Workspace& ws) override;
  void backward_into(std::size_t index, const Tensor& grad_output,
                     Tensor& grad_input, Workspace& ws) override;
  void sensitivity_backward_into(std::size_t index, const Tensor& sens_output,
                                 Tensor& sens_input, Workspace& ws) override;
  void sensitivity_backward_item(std::size_t index, std::int64_t item,
                                 const Tensor& sens_output, Tensor& sens_input,
                                 Workspace& ws) override;
  Shape output_shape(const Shape& input_shape) const override;
  std::vector<ParamView> param_views() override;
  std::unique_ptr<Layer> clone() const override;
  void save(ByteWriter& writer) const override;
  static std::unique_ptr<Conv2d> load(ByteReader& reader);

  const Config& config() const { return config_; }
  Tensor& weights() { return weights_; }
  Tensor& bias() { return bias_; }

 private:
  Conv2d() = default;  // for load()/clone()
  void check_input(const Shape& input_shape) const;
  /// One item's sensitivity propagation (shared by the batched and per-item
  /// passes so both run identical arithmetic in identical order).
  void sensitivity_item(std::size_t index, std::int64_t item,
                        const float* s_out, float* sens_image, Workspace& ws);
  std::int64_t col_rows() const {
    return config_.in_channels * config_.kernel * config_.kernel;
  }

  Config config_;
  Tensor weights_;      // [out_c, in_c*k*k]
  Tensor bias_;         // [out_c]
  Tensor weight_grad_;  // [out_c, in_c*k*k]
  Tensor bias_grad_;    // [out_c]

  // Caches from the last forward (per batch item im2col buffers).
  Tensor cached_input_;   // [N, C, H, W]
  Tensor cached_cols_;    // [N, col_rows, out_h*out_w]
  std::int64_t cached_out_h_ = 0;
  std::int64_t cached_out_w_ = 0;

  // Scratch arena for the standalone forward()/backward()/
  // sensitivity_backward() entry points (the calibration loop's path), so
  // repeated calls reuse their col-gradient buffers instead of allocating a
  // fresh Workspace per call. Never cloned — each copy warms its own.
  Workspace scratch_ws_;
};

}  // namespace dnnv::nn

#endif  // DNNV_NN_CONV2D_H_
