// Pipeline/API-redesign tests: the generator registry must be bit-identical
// to the pre-redesign entry points, the ExecutionBackend detection loop must
// reproduce the historical harnesses, the Deliverable must round-trip (and
// reject corruption), and the parallel BlackBoxIp::predict_all default must
// match the serial loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <utility>

#include "attack/random_perturbation.h"
#include "attack/sba.h"
#include "exp/model_zoo.h"
#include "ip/quantized_ip.h"
#include "ip/reference_ip.h"
#include "nn/builder.h"
#include "pipeline/user.h"
#include "pipeline/vendor.h"
#include "quant/quant_model.h"
#include "tensor/batch.h"
#include "testgen/generator.h"
#include "testgen/gradient_generator.h"
#include "testgen/greedy_selector.h"
#include "testgen/neuron_selector.h"
#include "util/error.h"
#include "util/thread_pool.h"
#include "validate/backend.h"
#include "validate/detection.h"

namespace dnnv {
namespace {

using nn::ActivationKind;
using nn::Sequential;

Sequential small_relu_net(std::uint64_t seed = 21) {
  Rng rng(seed);
  return nn::build_mlp(6, {10, 8}, 4, ActivationKind::kReLU, rng);
}

std::vector<Tensor> random_pool(int count, std::uint64_t seed = 22) {
  Rng rng(seed);
  std::vector<Tensor> pool;
  for (int i = 0; i < count; ++i) {
    pool.push_back(Tensor::rand_uniform(Shape{6}, rng, -1.0f, 1.0f));
  }
  return pool;
}

/// Exact equality of two generation results (inputs compared by distance).
void expect_identical(const testgen::GenerationResult& a,
                      const testgen::GenerationResult& b) {
  ASSERT_EQ(a.tests.size(), b.tests.size());
  for (std::size_t i = 0; i < a.tests.size(); ++i) {
    EXPECT_EQ(a.tests[i].source, b.tests[i].source) << "test " << i;
    EXPECT_EQ(a.tests[i].pool_index, b.tests[i].pool_index) << "test " << i;
    EXPECT_DOUBLE_EQ(
        squared_distance(a.tests[i].input, b.tests[i].input), 0.0)
        << "test " << i;
  }
  EXPECT_EQ(a.coverage_after, b.coverage_after);
  EXPECT_EQ(a.final_coverage, b.final_coverage);
  EXPECT_EQ(a.decisions.size(), b.decisions.size());
}

exp::ZooOptions tiny_options() {
  exp::ZooOptions options;
  options.tiny = true;
  options.cache_dir =
      (std::filesystem::temp_directory_path() / "dnnv_test_zoo").string();
  return options;
}

// ---------- Generator registry ----------

TEST(GeneratorRegistryTest, AllFiveMethodsRegistered) {
  const std::vector<std::string> expected = {"greedy", "gradient", "combined",
                                             "neuron", "random"};
  // Built-ins register first; custom generators (other tests register one
  // into the process-wide registry) append after them.
  const auto names = testgen::generator_names();
  ASSERT_GE(names.size(), expected.size());
  EXPECT_TRUE(std::equal(expected.begin(), expected.end(), names.begin()))
      << "built-in generators missing or reordered";
  for (const auto& name : expected) {
    EXPECT_TRUE(testgen::generator_registered(name));
    const auto generator = testgen::make_generator(name);
    ASSERT_NE(generator, nullptr);
    EXPECT_EQ(generator->name(), name);
  }
  EXPECT_FALSE(testgen::generator_registered("nope"));
  EXPECT_THROW(testgen::make_generator("nope"), Error);
}

TEST(GeneratorRegistryTest, CustomGeneratorsCanRegister) {
  testgen::register_generator(
      "custom-empty", [](const testgen::GeneratorConfig&) {
        class Empty final : public testgen::Generator {
         public:
          std::string name() const override { return "custom-empty"; }
          testgen::GenerationResult generate(
              const testgen::GenContext&) const override {
            return {};
          }
        };
        return std::make_unique<Empty>();
      });
  EXPECT_TRUE(testgen::generator_registered("custom-empty"));
  EXPECT_TRUE(
      testgen::make_generator("custom-empty")->generate({}).tests.empty());
}

TEST(GeneratorRegistryTest, MissingContextFieldsThrow) {
  const Sequential model = small_relu_net();
  testgen::GenContext ctx;  // everything missing
  EXPECT_THROW(testgen::make_generator("greedy")->generate(ctx), Error);
  ctx.model = &model;
  EXPECT_THROW(testgen::make_generator("combined")->generate(ctx), Error);
  EXPECT_THROW(testgen::make_generator("gradient")->generate(ctx), Error);
  EXPECT_THROW(testgen::make_generator("random")->generate(ctx), Error);
}

TEST(GeneratorRegistryTest, GreedyMatchesDirectEntryPoint) {
  const Sequential model = small_relu_net(31);
  const auto pool = random_pool(30, 32);
  const auto universe = static_cast<std::size_t>(model.param_count());

  testgen::GreedySelector::Options direct_options;
  direct_options.max_tests = 12;
  cov::CoverageAccumulator direct_acc(universe);
  const auto direct =
      testgen::GreedySelector(direct_options).select(model, pool, direct_acc);

  testgen::GeneratorConfig config;
  config.max_tests = 12;
  cov::CoverageAccumulator registry_acc(universe);
  testgen::GenContext ctx;
  ctx.model = &model;
  ctx.pool = &pool;
  ctx.accumulator = &registry_acc;
  const auto via_registry =
      testgen::make_generator("greedy", config)->generate(ctx);

  expect_identical(direct, via_registry);
  EXPECT_EQ(direct_acc.covered_count(), registry_acc.covered_count());

  // With precomputed masks the adapter must route to select_with_masks and
  // still land on the same picks.
  const auto masks = cov::activation_masks(model, pool, config.coverage);
  cov::CoverageAccumulator masked_acc(universe);
  ctx.masks = &masks;
  ctx.accumulator = &masked_acc;
  expect_identical(direct,
                   testgen::make_generator("greedy", config)->generate(ctx));
}

TEST(GeneratorRegistryTest, GradientMatchesDirectEntryPoint) {
  const Sequential model = small_relu_net(41);
  const auto universe = static_cast<std::size_t>(model.param_count());

  testgen::GradientGenerator::Options direct_options;
  direct_options.max_tests = 8;
  direct_options.steps = 15;
  cov::CoverageAccumulator direct_acc(universe);
  const auto direct = testgen::GradientGenerator(direct_options)
                          .generate(model, Shape{6}, 4, direct_acc);

  testgen::GeneratorConfig config;
  config.max_tests = 8;
  config.gradient.steps = 15;
  cov::CoverageAccumulator registry_acc(universe);
  testgen::GenContext ctx;
  ctx.model = &model;
  ctx.item_shape = Shape{6};
  ctx.num_classes = 4;
  ctx.accumulator = &registry_acc;
  expect_identical(direct,
                   testgen::make_generator("gradient", config)->generate(ctx));
}

TEST(GeneratorRegistryTest, CombinedMatchesDirectEntryPoint) {
  const Sequential model = small_relu_net(51);
  const auto pool = random_pool(20, 52);
  const auto universe = static_cast<std::size_t>(model.param_count());

  testgen::CombinedGenerator::Options direct_options;
  direct_options.max_tests = 16;
  direct_options.gradient.steps = 20;
  cov::CoverageAccumulator direct_acc(universe);
  const auto direct =
      testgen::CombinedGenerator(direct_options)
          .generate(model, pool, Shape{6}, 4, direct_acc);

  testgen::GeneratorConfig config;
  config.max_tests = 16;
  config.gradient.steps = 20;
  cov::CoverageAccumulator registry_acc(universe);
  testgen::GenContext ctx;
  ctx.model = &model;
  ctx.pool = &pool;
  ctx.item_shape = Shape{6};
  ctx.num_classes = 4;
  ctx.accumulator = &registry_acc;
  const auto via_registry =
      testgen::make_generator("combined", config)->generate(ctx);
  expect_identical(direct, via_registry);

  // Decision traces must agree step for step, not just in size.
  for (std::size_t i = 0; i < direct.decisions.size(); ++i) {
    EXPECT_EQ(direct.decisions[i].step, via_registry.decisions[i].step);
    EXPECT_EQ(direct.decisions[i].chose_synthetic,
              via_registry.decisions[i].chose_synthetic);
    EXPECT_DOUBLE_EQ(direct.decisions[i].greedy_gain,
                     via_registry.decisions[i].greedy_gain);
    EXPECT_DOUBLE_EQ(direct.decisions[i].synthetic_gain,
                     via_registry.decisions[i].synthetic_gain);
  }
}

TEST(GeneratorRegistryTest, NeuronMatchesDirectEntryPoint) {
  const Sequential model = small_relu_net(61);
  const auto pool = random_pool(15, 62);

  testgen::NeuronCoverageSelector::Options direct_options;
  direct_options.max_tests = 10;
  const auto direct = testgen::NeuronCoverageSelector(direct_options)
                          .select(model, Shape{6}, pool);

  testgen::GeneratorConfig config;
  config.max_tests = 10;
  testgen::GenContext ctx;
  ctx.model = &model;
  ctx.pool = &pool;
  ctx.item_shape = Shape{6};
  ctx.num_classes = 4;
  expect_identical(direct,
                   testgen::make_generator("neuron", config)->generate(ctx));
}

TEST(GeneratorRegistryTest, RandomMatchesDirectEntryPoint) {
  const Sequential model = small_relu_net(71);
  const auto pool = random_pool(12, 72);
  const auto direct = testgen::RandomSelector(6, 17).select(pool);

  testgen::GeneratorConfig config;
  config.max_tests = 6;
  config.random_seed = 17;
  testgen::GenContext ctx;
  ctx.pool = &pool;
  const auto via_registry =
      testgen::make_generator("random", config)->generate(ctx);
  expect_identical(direct, via_registry);

  // With masks the control also reports the trajectory Fig 3 plots.
  const auto masks = cov::activation_masks(model, pool, cov::CoverageConfig{});
  const auto universe = static_cast<std::size_t>(model.param_count());
  cov::CoverageAccumulator acc(universe);
  ctx.model = &model;
  ctx.masks = &masks;
  ctx.accumulator = &acc;
  const auto traced = testgen::make_generator("random", config)->generate(ctx);
  ASSERT_EQ(traced.coverage_after.size(), traced.tests.size());
  EXPECT_EQ(traced.final_coverage, acc.coverage());
  for (std::size_t i = 0; i < traced.tests.size(); ++i) {
    EXPECT_EQ(traced.tests[i].pool_index, direct.tests[i].pool_index);
  }
}

// ---------- ExecutionBackend ----------

TEST(ExecutionBackendTest, FloatBackendReproducesLegacyDetection) {
  Sequential model = small_relu_net(81);
  const auto inputs = random_pool(10, 82);
  const validate::TestSuite suite = validate::TestSuite::create(model, inputs);
  const auto victims = random_pool(5, 83);

  attack::SingleBiasAttack attack;
  validate::DetectionConfig config;
  config.trials = 40;
  config.test_counts = {5, 10};
  config.seed = 99;

  const auto legacy =
      validate::run_detection(model, suite, attack, victims, config);
  validate::FloatReferenceBackend backend(model);
  const auto via_backend =
      validate::run_detection(model, suite, backend, attack, victims, config);
  EXPECT_EQ(legacy.rate_per_count, via_backend.rate_per_count);
  EXPECT_EQ(legacy.successful_trials, via_backend.successful_trials);
  EXPECT_EQ(legacy.dropped_trials, via_backend.dropped_trials);
  EXPECT_EQ(legacy.mean_first_detection, via_backend.mean_first_detection);
}

TEST(ExecutionBackendTest, FloatGoldenLabelsAreTheSuiteLabels) {
  Sequential model = small_relu_net(85);
  const auto inputs = random_pool(6, 86);
  const validate::TestSuite suite = validate::TestSuite::create(model, inputs);
  const Tensor batch = stack_batch(suite.inputs());
  validate::FloatReferenceBackend backend(model);
  EXPECT_EQ(backend.golden_labels(suite, batch), suite.golden_labels());
  EXPECT_EQ(backend.predict_clean(batch), suite.golden_labels());
}

TEST(ExecutionBackendTest, FaultApplicationIsAnInvolution) {
  Sequential model = small_relu_net(91);
  const auto calibration = random_pool(16, 92);
  auto qmodel = quant::QuantModel::quantize(model, calibration);
  std::vector<std::int8_t> before;
  for (auto& view : qmodel.param_views()) {
    before.insert(before.end(), view.codes, view.codes + view.size);
  }

  const std::vector<validate::CodeFault> faults = {
      {0, 7}, {3, 0}, {before.size() - 1, 4}};
  validate::apply_code_faults(qmodel, faults);
  std::vector<std::int8_t> faulted;
  for (auto& view : qmodel.param_views()) {
    faulted.insert(faulted.end(), view.codes, view.codes + view.size);
  }
  EXPECT_NE(before, faulted);

  validate::apply_code_faults(qmodel, faults);  // XOR twice = identity
  std::vector<std::int8_t> restored;
  for (auto& view : qmodel.param_views()) {
    restored.insert(restored.end(), view.codes, view.codes + view.size);
  }
  EXPECT_EQ(before, restored);

  EXPECT_THROW(
      validate::apply_code_faults(
          qmodel, {{static_cast<std::size_t>(qmodel.param_count()), 0}}),
      Error);
}

TEST(ExecutionBackendTest, FaultInjectedBackendRunsTheSharedLoop) {
  Sequential model = small_relu_net(95);
  const auto inputs = random_pool(10, 96);
  const auto calibration = random_pool(32, 97);
  auto qmodel = quant::QuantModel::quantize(model, calibration);
  const Tensor batch = stack_batch(inputs);
  const validate::TestSuite suite =
      validate::TestSuite::from_labels(inputs, qmodel.predict_labels(batch));
  const auto victims = random_pool(5, 98);

  // Sign-bit faults across the first weights: the faulty device must stay
  // pluggable into the one detection loop and produce sound rates.
  std::vector<validate::CodeFault> faults;
  for (std::size_t address = 0; address < 12; ++address) {
    faults.push_back({address, 7});
  }
  validate::FaultInjectedInt8Backend backend(qmodel, faults);
  EXPECT_EQ(backend.name(), "faulty-int8");

  attack::RandomPerturbation::Options attack_options;
  attack_options.num_params = 4;
  attack_options.relative_sigma = 6.0f;
  attack::RandomPerturbation attack(attack_options);
  validate::DetectionConfig config;
  config.trials = 30;
  config.test_counts = {5, 10};
  const auto outcome =
      validate::run_detection(model, suite, backend, attack, victims, config);
  EXPECT_EQ(outcome.successful_trials + outcome.dropped_trials, 30);
  for (const double rate : outcome.rate_per_count) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
  EXPECT_LE(outcome.rate_per_count[0], outcome.rate_per_count[1] + 1e-12);
}

// ---------- Backend parity on a zoo model ----------

TEST(BackendParityTest, Int8MatchesLegacyQuantizedDetectionOnZooModel) {
  auto trained = exp::cifar_relu(tiny_options());
  const auto pool = exp::shapes_train(60);
  auto qmodel = quant::QuantModel::quantize(trained.model, pool.images);

  std::vector<Tensor> inputs(pool.images.begin(), pool.images.begin() + 12);
  const Tensor batch = stack_batch(inputs);
  const validate::TestSuite suite =
      validate::TestSuite::from_labels(inputs, qmodel.predict_labels(batch));

  attack::SingleBiasAttack attack;
  validate::DetectionConfig config;
  config.trials = 24;
  config.test_counts = {6, 12};
  config.seed = 7;
  const auto legacy = validate::run_detection_quantized(
      trained.model, qmodel, suite, attack, pool.images, config);
  validate::Int8Backend backend(qmodel);
  const auto via_backend = validate::run_detection(
      trained.model, suite, backend, attack, pool.images, config);
  EXPECT_EQ(legacy.rate_per_count, via_backend.rate_per_count);
  EXPECT_EQ(legacy.successful_trials, via_backend.successful_trials);
  EXPECT_EQ(legacy.mean_first_detection, via_backend.mean_first_detection);
}

TEST(BackendParityTest, FloatAndInt8QualificationAgreeOnZooModel) {
  auto trained = exp::cifar_relu(tiny_options());
  const auto pool = exp::shapes_train(60);
  auto qmodel = quant::QuantModel::quantize(trained.model, pool.images);

  std::vector<Tensor> inputs(pool.images.begin(), pool.images.begin() + 20);
  const Tensor batch = stack_batch(inputs);
  validate::FloatReferenceBackend float_backend(trained.model);
  validate::Int8Backend int8_backend(qmodel);
  const auto float_labels = float_backend.predict_clean(batch);
  const auto int8_labels = int8_backend.predict_clean(batch);
  ASSERT_EQ(float_labels.size(), int8_labels.size());
  int agree = 0;
  for (std::size_t i = 0; i < float_labels.size(); ++i) {
    agree += float_labels[i] == int8_labels[i];
  }
  // Post-training int8 on a trained model: near-total agreement expected.
  EXPECT_GE(agree, static_cast<int>(float_labels.size()) - 2)
      << "int8 engine disagrees with float on too many inputs";
}

// ---------- Deliverable / pipeline ----------

TEST(PipelineTest, DeliverableRoundTripsAndReproducesVerdict) {
  auto trained = exp::cifar_relu(tiny_options());
  const auto pool = exp::shapes_train(60);

  pipeline::VendorOptions options;
  options.method = "combined";
  options.backend = "int8";
  options.num_tests = 10;
  options.generator.coverage = trained.coverage;
  options.generator.gradient.steps = 15;
  options.model_name = trained.name;

  pipeline::VendorReport report;
  pipeline::Deliverable shipped =
      pipeline::VendorPipeline(options).run(trained.model, trained.item_shape,
                                            trained.num_classes, pool.images,
                                            &report);
  EXPECT_EQ(shipped.manifest.method, "combined");
  EXPECT_EQ(shipped.manifest.backend, "int8");
  EXPECT_EQ(shipped.manifest.num_tests, 10);
  EXPECT_TRUE(shipped.has_quant);
  EXPECT_EQ(shipped.suite.size(), 10u);
  EXPECT_GT(report.coverage, 0.0);
  EXPECT_GE(report.backend_float_agreement, 0);

  // The vendor's own bundle must validate SECURE before shipping.
  EXPECT_TRUE(
      pipeline::UserValidator(std::move(shipped)).validate().passed);
}

TEST(PipelineTest, SaveLoadValidateAndCorruptionRejection) {
  auto trained = exp::cifar_relu(tiny_options());
  const auto pool = exp::shapes_train(60);

  pipeline::VendorOptions options;
  options.method = "greedy";
  options.backend = "float";
  options.num_tests = 8;
  options.generator.coverage = trained.coverage;
  options.model_name = trained.name;

  const pipeline::Deliverable shipped =
      pipeline::VendorPipeline(options).run(trained.model, trained.item_shape,
                                            trained.num_classes, pool.images);
  const std::string path =
      (std::filesystem::temp_directory_path() / "dnnv_deliverable.bin").string();
  constexpr std::uint64_t kKey = 0xBEEFCAFE;
  shipped.save_file(path, kKey);

  // Round trip: the user loads the one file and reproduces the verdict.
  const auto validator = pipeline::UserValidator::load_file(path, kKey);
  EXPECT_EQ(validator.deliverable().manifest.method, "greedy");
  EXPECT_EQ(validator.deliverable().suite.size(), 8u);
  EXPECT_EQ(validator.deliverable().suite.golden_labels(),
            shipped.suite.golden_labels());
  const auto verdict = validator.validate();
  EXPECT_TRUE(verdict.passed);
  EXPECT_EQ(verdict.tests_run, 8);

  // Wrong key: plausibility checks reject the garbage plaintext.
  EXPECT_THROW(pipeline::Deliverable::load_file(path, kKey + 1), Error);

  // Corrupted payload byte: the CRC footer rejects before parsing.
  auto bytes = read_file(path);
  bytes[bytes.size() / 2] ^= 0x08;
  write_file(path, bytes);
  EXPECT_THROW(pipeline::Deliverable::load_file(path, kKey), Error);
  std::filesystem::remove(path);
}

TEST(PipelineTest, ManifestV4StaticAnalysisRoundTrip) {
  auto trained = exp::cifar_relu(tiny_options());
  const auto pool = exp::shapes_train(60);

  pipeline::VendorOptions options;
  options.method = "greedy";
  options.backend = "int8";
  options.num_tests = 8;
  options.generator.coverage = trained.coverage;
  options.model_name = trained.name;
  options.fault_model = "full";
  options.fault_budget = 0;  // full universe: dominance pairs need neighbours
  options.analysis_domain = "affine";
  options.calibrated = true;

  pipeline::VendorReport report;
  const pipeline::Deliverable shipped =
      pipeline::VendorPipeline(options).run(trained.model, trained.item_shape,
                                            trained.num_classes, pool.images,
                                            &report);

  // The static-analysis provenance lands in the manifest, coherently with
  // the run's own stats.
  const auto& m = shipped.manifest;
  EXPECT_EQ(m.analysis_domain, "affine");
  ASSERT_EQ(m.input_domains.size(), 3u);  // one domain per CIFAR channel
  for (const auto& domain : m.input_domains) {
    EXPECT_LE(domain.lo, domain.hi);
  }
  EXPECT_GT(m.fault_dominated, 0);
  EXPECT_EQ(m.fault_dominated, report.fault_stats.dominated);
  EXPECT_EQ(m.fault_conditional, report.fault_stats.conditional);
  EXPECT_EQ(static_cast<std::int64_t>(m.excitations.size()),
            m.fault_conditional);

  // Byte round trip preserves every v4 field.
  const std::string path =
      (std::filesystem::temp_directory_path() / "dnnv_deliverable_v4.bin")
          .string();
  constexpr std::uint64_t kKey = 0xFEEDF00D;
  shipped.save_file(path, kKey);
  const auto loaded = pipeline::Deliverable::load_file(path, kKey);
  std::filesystem::remove(path);
  EXPECT_EQ(loaded.manifest.analysis_domain, m.analysis_domain);
  ASSERT_EQ(loaded.manifest.input_domains.size(), m.input_domains.size());
  for (std::size_t i = 0; i < m.input_domains.size(); ++i) {
    EXPECT_EQ(loaded.manifest.input_domains[i], m.input_domains[i]);
  }
  EXPECT_EQ(loaded.manifest.fault_dominated, m.fault_dominated);
  EXPECT_EQ(loaded.manifest.fault_conditional, m.fault_conditional);
  ASSERT_EQ(loaded.manifest.excitations.size(), m.excitations.size());
  for (std::size_t i = 0; i < m.excitations.size(); ++i) {
    EXPECT_EQ(loaded.manifest.excitations[i].fault_id,
              m.excitations[i].fault_id);
    EXPECT_EQ(loaded.manifest.excitations[i].layer, m.excitations[i].layer);
    EXPECT_EQ(loaded.manifest.excitations[i].channel,
              m.excitations[i].channel);
    EXPECT_EQ(loaded.manifest.excitations[i].acc, m.excitations[i].acc);
  }

  // The user side re-runs the vendor's classification from the manifest
  // alone (same domain, same calibrated conditioning) and reproduces every
  // count exactly — the vendor-user contract of the fault stage.
  const auto remeasured = pipeline::fault_coverage(loaded);
  EXPECT_EQ(remeasured.enumerated, report.fault_stats.enumerated);
  EXPECT_EQ(remeasured.untestable, report.fault_stats.untestable);
  EXPECT_EQ(remeasured.dominated, report.fault_stats.dominated);
  EXPECT_EQ(remeasured.conditional, report.fault_stats.conditional);
  EXPECT_EQ(remeasured.scored, m.fault_universe);
  EXPECT_EQ(remeasured.detected, m.fault_detected);
  ASSERT_EQ(remeasured.excitations.size(), m.excitations.size());
  for (std::size_t i = 0; i < m.excitations.size(); ++i) {
    EXPECT_EQ(remeasured.excitations[i].fault_id, m.excitations[i].fault_id);
    EXPECT_EQ(remeasured.excitations[i].acc, m.excitations[i].acc);
  }
}

TEST(PipelineTest, TamperedDeviceIsCaught) {
  auto trained = exp::cifar_relu(tiny_options());
  const auto pool = exp::shapes_train(60);

  pipeline::VendorOptions options;
  options.method = "combined";
  options.backend = "int8";
  options.num_tests = 12;
  options.generator.coverage = trained.coverage;
  options.generator.gradient.steps = 15;

  pipeline::UserValidator validator(
      pipeline::VendorPipeline(options).run(trained.model, trained.item_shape,
                                            trained.num_classes, pool.images));
  EXPECT_TRUE(validator.validate().passed);

  // Sign-bit-flip a swath of the delivered device's weight memory: the
  // replay must flag TAMPERED.
  auto device = validator.make_device();
  auto* quantized = dynamic_cast<ip::QuantizedIp*>(device.get());
  ASSERT_NE(quantized, nullptr);
  const auto& first_tensor = quantized->tensor_table().front();
  for (std::int64_t i = 0; i < first_tensor.size; ++i) {
    quantized->flip_bit(first_tensor.memory_offset +
                            static_cast<std::size_t>(i),
                        7);
  }
  EXPECT_FALSE(validator.validate(*quantized).passed);
}

// ---------- Parallel predict_all default ----------

/// Minimal stateful IP exercising the BASE predict_all (no override): label
/// depends only on the input, clones share nothing.
class ToyIp : public ip::BlackBoxIp {
 public:
  explicit ToyIp(int classes) : classes_(classes) {}

  int predict(const Tensor& input) override {
    ++calls_;
    double sum = 0.0;
    for (std::int64_t i = 0; i < input.numel(); ++i) {
      sum += static_cast<double>(input[i]) * static_cast<double>(i + 1);
    }
    const auto bucket = static_cast<long long>(std::llround(sum * 64.0));
    return static_cast<int>(((bucket % classes_) + classes_) % classes_);
  }
  std::unique_ptr<ip::BlackBoxIp> clone_ip() override {
    return std::make_unique<ToyIp>(classes_);
  }
  Shape input_shape() const override { return Shape{6}; }
  int num_classes() const override { return classes_; }
  int calls() const { return calls_; }

 private:
  int classes_;
  int calls_ = 0;
};

/// Same, but not cloneable: must fall back to the serial loop.
class SerialToyIp final : public ToyIp {
 public:
  using ToyIp::ToyIp;
  std::unique_ptr<ip::BlackBoxIp> clone_ip() override { return nullptr; }
};

TEST(PredictAllTest, ParallelDefaultMatchesSerialLoop) {
  const auto inputs = random_pool(64, 123);
  ToyIp parallel_ip(7);
  const auto parallel_labels = parallel_ip.predict_all(inputs);

  ToyIp serial_ip(7);
  std::vector<int> serial_labels;
  for (const auto& input : inputs) serial_labels.push_back(serial_ip.predict(input));

  EXPECT_EQ(parallel_labels, serial_labels);
  EXPECT_EQ(serial_ip.calls(), 64);
  if (ThreadPool::shared().num_threads() >= 2) {
    // The parallel path predicts through clones, not this instance.
    EXPECT_EQ(parallel_ip.calls(), 0);
  } else {
    // Single-core machine: chunking is pointless, the loop stays serial.
    EXPECT_EQ(parallel_ip.calls(), 64);
  }
}

TEST(PredictAllTest, NonCloneableIpFallsBackToSerial) {
  const auto inputs = random_pool(40, 124);
  SerialToyIp ip(5);
  ToyIp reference(5);
  std::vector<int> expected;
  for (const auto& input : inputs) expected.push_back(reference.predict(input));
  EXPECT_EQ(ip.predict_all(inputs), expected);
  EXPECT_EQ(ip.calls(), 40);
}

TEST(PredictAllTest, ReferenceIpCloneReplaysIdentically) {
  Sequential model = small_relu_net(131);
  ip::ReferenceIp ip(model, Shape{6});
  auto clone = ip.clone_ip();
  ASSERT_NE(clone, nullptr);
  const auto inputs = random_pool(10, 132);
  EXPECT_EQ(ip.predict_all(inputs), clone->predict_all(inputs));
}

}  // namespace
}  // namespace dnnv
