#include "quant/qops.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "quant/quantize.h"
#include "tensor/im2col.h"
#include "util/error.h"

namespace dnnv::quant {

void im2col_s8(const std::int8_t* image, std::int64_t channels,
               std::int64_t height, std::int64_t width, std::int64_t kh,
               std::int64_t kw, std::int64_t stride, std::int64_t pad,
               std::int8_t* columns) {
  const std::int64_t out_h = conv_out_dim(height, kh, stride, pad);
  const std::int64_t out_w = conv_out_dim(width, kw, stride, pad);
  const std::int64_t out_plane = out_h * out_w;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < channels; ++c) {
    const std::int8_t* plane = image + c * height * width;
    for (std::int64_t ky = 0; ky < kh; ++ky) {
      for (std::int64_t kx = 0; kx < kw; ++kx, ++row) {
        std::int8_t* out_row = columns + row * out_plane;
        if (stride == 1) {
          const std::int64_t x0 = std::max<std::int64_t>(0, pad - kx);
          const std::int64_t x1 =
              std::min<std::int64_t>(out_w, width + pad - kx);
          for (std::int64_t oy = 0; oy < out_h; ++oy) {
            std::int8_t* dst = out_row + oy * out_w;
            const std::int64_t iy = oy - pad + ky;
            if (iy < 0 || iy >= height || x0 >= x1) {
              std::memset(dst, 0, static_cast<std::size_t>(out_w));
              continue;
            }
            if (x0 > 0) std::memset(dst, 0, static_cast<std::size_t>(x0));
            std::memcpy(dst + x0, plane + iy * width + (x0 - pad + kx),
                        static_cast<std::size_t>(x1 - x0));
            if (x1 < out_w) {
              std::memset(dst + x1, 0, static_cast<std::size_t>(out_w - x1));
            }
          }
          continue;
        }
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * stride - pad + ky;
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * stride - pad + kx;
            const bool inside =
                iy >= 0 && iy < height && ix >= 0 && ix < width;
            out_row[oy * out_w + ox] =
                inside ? plane[iy * width + ix] : std::int8_t{0};
          }
        }
      }
    }
  }
}

void maxpool2d_s8(const std::int8_t* image, std::int64_t channels,
                  std::int64_t height, std::int64_t width, std::int64_t kernel,
                  std::int64_t stride, std::int8_t* output) {
  const std::int64_t out_h = conv_out_dim(height, kernel, stride, 0);
  const std::int64_t out_w = conv_out_dim(width, kernel, stride, 0);
  for (std::int64_t c = 0; c < channels; ++c) {
    const std::int8_t* plane = image + c * height * width;
    std::int8_t* out_plane = output + c * out_h * out_w;
    for (std::int64_t oy = 0; oy < out_h; ++oy) {
      for (std::int64_t ox = 0; ox < out_w; ++ox) {
        std::int8_t best = std::numeric_limits<std::int8_t>::min();
        const std::int64_t y0 = oy * stride;
        const std::int64_t x0 = ox * stride;
        const std::int64_t y1 = std::min(y0 + kernel, height);
        const std::int64_t x1 = std::min(x0 + kernel, width);
        for (std::int64_t y = y0; y < y1; ++y) {
          for (std::int64_t x = x0; x < x1; ++x) {
            best = std::max(best, plane[y * width + x]);
          }
        }
        out_plane[oy * out_w + ox] = best;
      }
    }
  }
}

std::array<std::int8_t, 256> build_activation_lut(nn::ActivationKind kind,
                                                  float in_scale,
                                                  float out_scale) {
  std::array<std::int8_t, 256> lut{};
  for (int code = -128; code <= 127; ++code) {
    const float x = in_scale * static_cast<float>(code);
    const float y = nn::activate(kind, x);
    lut[static_cast<std::uint8_t>(static_cast<std::int8_t>(code))] =
        quantize_value(y, out_scale);
  }
  return lut;
}

void apply_lut(const std::array<std::int8_t, 256>& lut, const std::int8_t* in,
               std::int64_t count, std::int8_t* out) {
  for (std::int64_t i = 0; i < count; ++i) {
    out[i] = lut[static_cast<std::uint8_t>(in[i])];
  }
}

}  // namespace dnnv::quant
