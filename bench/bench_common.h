// Shared helpers for the paper-reproduction bench binaries.
#ifndef DNNV_BENCH_BENCH_COMMON_H_
#define DNNV_BENCH_BENCH_COMMON_H_

#include <iostream>
#include <string>

#include "exp/model_zoo.h"
#include "util/cli.h"

namespace dnnv::bench {

/// Standard zoo options for benches: cache under .cache/dnnv (or
/// $DNNV_CACHE_DIR), training progress on stderr, paper-scale opt-in.
inline exp::ZooOptions zoo_options(const CliArgs& args) {
  exp::ZooOptions options;
  options.verbose = true;
  options.paper_scale = args.get_bool("paper-scale", false);
  options.retrain = args.get_bool("retrain", false);
  return options;
}

/// Prints the standard bench banner.
inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "==================================================================\n"
            << title << "\n"
            << "reproduces: " << paper_ref << "\n"
            << "==================================================================\n";
}

}  // namespace dnnv::bench

#endif  // DNNV_BENCH_BENCH_COMMON_H_
