#include "pipeline/user.h"

#include <utility>

#include "ip/quantized_ip.h"
#include "ip/reference_ip.h"
#include "util/error.h"

namespace dnnv::pipeline {

UserValidator::UserValidator(Deliverable deliverable)
    : deliverable_(std::move(deliverable)) {
  DNNV_CHECK(!deliverable_.suite.empty(), "deliverable carries no tests");
}

UserValidator UserValidator::load_file(const std::string& path,
                                       std::uint64_t key) {
  return UserValidator(Deliverable::load_file(path, key));
}

std::unique_ptr<ip::BlackBoxIp> UserValidator::make_device() const {
  const Shape item_shape{
      std::vector<std::int64_t>(deliverable_.suite.inputs().front().shape().dims())};
  if (deliverable_.has_quant) {
    return std::make_unique<ip::QuantizedIp>(deliverable_.qmodel, item_shape);
  }
  return std::make_unique<ip::ReferenceIp>(deliverable_.model, item_shape);
}

validate::Verdict UserValidator::validate(bool early_exit) const {
  const auto device = make_device();
  return validate(*device, early_exit);
}

validate::Verdict UserValidator::validate(ip::BlackBoxIp& device,
                                          bool early_exit) const {
  return validate::validate_ip(device, deliverable_.suite, early_exit);
}

}  // namespace dnnv::pipeline
