// Model-level tests: Sequential registry, serialisation, losses, optimisers,
// and training convergence.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "nn/activation_layer.h"
#include "nn/builder.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "nn/trainer.h"
#include "tensor/batch.h"
#include "util/error.h"

namespace dnnv::nn {
namespace {

Sequential tiny_mlp(std::uint64_t seed = 3) {
  Rng rng(seed);
  return build_mlp(4, {6}, 3, ActivationKind::kReLU, rng);
}

// ---------- Parameter registry ----------

TEST(SequentialTest, ParamCountMatchesViews) {
  Sequential model = tiny_mlp();
  // dense(4->6): 24+6, dense(6->3): 18+3.
  EXPECT_EQ(model.param_count(), 24 + 6 + 18 + 3);
  std::int64_t total = 0;
  for (const auto& view : model.param_views()) total += view.size;
  EXPECT_EQ(total, model.param_count());
}

TEST(SequentialTest, GlobalIndexingRoundTrip) {
  Sequential model = tiny_mlp();
  const std::int64_t n = model.param_count();
  for (const std::int64_t idx : {std::int64_t{0}, n / 2, n - 1}) {
    const float original = model.get_param(idx);
    model.set_param(idx, 42.0f);
    EXPECT_EQ(model.get_param(idx), 42.0f);
    model.add_to_param(idx, 1.0f);
    EXPECT_EQ(model.get_param(idx), 43.0f);
    model.set_param(idx, original);
  }
  EXPECT_THROW(model.get_param(n), Error);
  EXPECT_THROW(model.get_param(-1), Error);
}

TEST(SequentialTest, ParamNamesAndBiasFlags) {
  Sequential model = tiny_mlp();
  EXPECT_EQ(model.param_name(0), "dense0.weight[0]");
  EXPECT_FALSE(model.param_is_bias(0));
  EXPECT_EQ(model.param_name(24), "dense0.bias[0]");
  EXPECT_TRUE(model.param_is_bias(24));
}

TEST(SequentialTest, SnapshotRestoreRoundTrip) {
  Sequential model = tiny_mlp();
  const auto snapshot = model.snapshot_params();
  model.set_param(0, 123.0f);
  model.set_param(10, -7.0f);
  model.restore_params(snapshot);
  EXPECT_EQ(model.get_param(0), snapshot[0]);
  EXPECT_EQ(model.get_param(10), snapshot[10]);
  EXPECT_THROW(model.restore_params(std::vector<float>(3)), Error);
}

TEST(SequentialTest, CloneIsDeepAndIndependent) {
  Sequential model = tiny_mlp();
  Sequential copy = model.clone();
  EXPECT_EQ(copy.param_count(), model.param_count());
  const float before = model.get_param(0);
  copy.set_param(0, before + 5.0f);
  EXPECT_EQ(model.get_param(0), before);

  Rng rng(4);
  const Tensor x = Tensor::rand_uniform(Shape{1, 4}, rng, -1.0f, 1.0f);
  copy.set_param(0, before);
  const Tensor a = model.forward(x);
  const Tensor b = copy.forward(x);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(SequentialTest, SaveLoadPreservesBehaviour) {
  Sequential model = tiny_mlp(11);
  const std::string path =
      (std::filesystem::temp_directory_path() / "dnnv_model_test.bin").string();
  model.save_file(path);
  Sequential loaded = Sequential::load_file(path);
  std::filesystem::remove(path);

  Rng rng(5);
  const Tensor x = Tensor::rand_uniform(Shape{2, 4}, rng, -1.0f, 1.0f);
  const Tensor a = model.forward(x);
  const Tensor b = loaded.forward(x);
  ASSERT_EQ(a.shape(), b.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(SequentialTest, LoadRejectsGarbage) {
  ByteWriter writer;
  writer.write_u32(0x12345678);
  ByteReader reader(writer.take());
  EXPECT_THROW(Sequential::load(reader), Error);
}

TEST(SequentialTest, SummaryMentionsLayers) {
  Sequential model = tiny_mlp();
  const std::string summary = model.summary();
  EXPECT_NE(summary.find("dense(4->6)"), std::string::npos);
  EXPECT_NE(summary.find("relu"), std::string::npos);
}

TEST(SequentialTest, PredictLabelsMatchArgmax) {
  Sequential model = tiny_mlp();
  Rng rng(6);
  std::vector<Tensor> items;
  for (int i = 0; i < 3; ++i) {
    items.push_back(Tensor::rand_uniform(Shape{4}, rng, -1.0f, 1.0f));
  }
  const auto labels = model.predict_labels(stack_batch(items));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(labels[static_cast<std::size_t>(i)],
              model.predict_label(items[static_cast<std::size_t>(i)]));
  }
}

// ---------- Losses ----------

TEST(LossTest, SoftmaxRowsSumToOne) {
  const Tensor logits(Shape{2, 3}, {1, 2, 3, -1, 0, 1});
  const Tensor probs = softmax(logits);
  for (int row = 0; row < 2; ++row) {
    double total = 0.0;
    for (int j = 0; j < 3; ++j) total += probs[row * 3 + j];
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
}

TEST(LossTest, SoftmaxStableForHugeLogits) {
  const Tensor logits(Shape{1, 2}, {1000.0f, 0.0f});
  const Tensor probs = softmax(logits);
  EXPECT_NEAR(probs[0], 1.0f, 1e-6);
  EXPECT_FALSE(std::isnan(probs[1]));
}

TEST(LossTest, CrossEntropyOfPerfectPredictionIsSmall) {
  const Tensor logits(Shape{1, 3}, {20.0f, 0.0f, 0.0f});
  const auto result = softmax_cross_entropy(logits, {0});
  EXPECT_LT(result.loss, 1e-6);
}

TEST(LossTest, CrossEntropyGradientSignsAndSum) {
  const Tensor logits(Shape{1, 3}, {1.0f, 2.0f, 0.5f});
  const auto result = softmax_cross_entropy(logits, {1});
  // Gradient rows of CE w.r.t. logits sum to zero; true class negative.
  double total = 0.0;
  for (int j = 0; j < 3; ++j) total += result.grad_logits[j];
  EXPECT_NEAR(total, 0.0, 1e-6);
  EXPECT_LT(result.grad_logits[1], 0.0f);
  EXPECT_GT(result.grad_logits[0], 0.0f);
}

TEST(LossTest, CrossEntropyValidatesLabels) {
  const Tensor logits(Shape{1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), Error);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), Error);
}

TEST(LossTest, MseZeroAtTarget) {
  const Tensor a(Shape{3}, {1, 2, 3});
  const auto result = mse_loss(a, a);
  EXPECT_DOUBLE_EQ(result.loss, 0.0);
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_EQ(result.grad_logits[i], 0.0f);
}

TEST(LossTest, AccuracyCounting) {
  const Tensor logits(Shape{2, 2}, {2.0f, 1.0f, 0.0f, 3.0f});
  EXPECT_DOUBLE_EQ(accuracy(logits, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 1}), 0.5);
}

// ---------- Optimisers ----------

TEST(OptimizerTest, SgdDescendsQuadratic) {
  // Minimise f(w) = 0.5*w^2 via its gradient w.
  Rng rng(7);
  Sequential model;
  model.add(std::make_unique<Dense>(1, 1, rng, InitKind::kZero));
  model.set_param(0, 4.0f);  // weight w
  Sgd opt(0.1f, 0.0f);
  for (int i = 0; i < 100; ++i) {
    const auto views = model.param_views();
    views[0].grad[0] = model.get_param(0);  // df/dw = w
    views[1].grad[0] = 0.0f;
    opt.step(model);
  }
  EXPECT_NEAR(model.get_param(0), 0.0f, 1e-3f);
}

TEST(OptimizerTest, AdamDescendsQuadratic) {
  Rng rng(7);
  Sequential model;
  model.add(std::make_unique<Dense>(1, 1, rng, InitKind::kZero));
  model.set_param(0, 4.0f);
  Adam opt(0.2f);
  for (int i = 0; i < 200; ++i) {
    const auto views = model.param_views();
    views[0].grad[0] = model.get_param(0);
    views[1].grad[0] = 0.0f;
    opt.step(model);
  }
  EXPECT_NEAR(model.get_param(0), 0.0f, 5e-2f);
}

TEST(OptimizerTest, WeightDecayShrinksParamsWithZeroGrad) {
  Rng rng(7);
  Sequential model;
  model.add(std::make_unique<Dense>(1, 1, rng, InitKind::kZero));
  model.set_param(0, 1.0f);
  Sgd opt(0.1f, 0.0f, /*weight_decay=*/0.5f);
  model.zero_grads();
  opt.step(model);
  // w -= lr * wd * w  ->  1 - 0.1*0.5 = 0.95
  EXPECT_NEAR(model.get_param(0), 0.95f, 1e-6f);
}

TEST(OptimizerTest, RejectsBadHyperparams) {
  EXPECT_THROW(Sgd(-0.1f), Error);
  EXPECT_THROW(Sgd(0.1f, 1.5f), Error);
  EXPECT_THROW(Adam(0.0f), Error);
}

// ---------- Trainer ----------

TEST(TrainerTest, LearnsLinearlySeparableTask) {
  // Two Gaussian blobs in 2-D; a tiny MLP must reach near-perfect accuracy.
  Rng rng(8);
  std::vector<Tensor> inputs;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    const int label = i % 2;
    const float cx = label == 0 ? -1.0f : 1.0f;
    Tensor x(Shape{2});
    x[0] = cx + static_cast<float>(rng.normal(0.0, 0.3));
    x[1] = -cx + static_cast<float>(rng.normal(0.0, 0.3));
    inputs.push_back(std::move(x));
    labels.push_back(label);
  }
  Rng model_rng(9);
  Sequential model = build_mlp(2, {8}, 2, ActivationKind::kTanh, model_rng);

  TrainConfig config;
  config.epochs = 30;
  config.batch_size = 16;
  config.learning_rate = 0.02f;
  int epochs_seen = 0;
  config.on_epoch = [&](int, double) { ++epochs_seen; };
  const auto result = fit(model, inputs, labels, config);
  EXPECT_EQ(result.epochs_run, 30);
  EXPECT_EQ(epochs_seen, 30);
  EXPECT_GT(evaluate_accuracy(model, inputs, labels), 0.97);
  EXPECT_LT(result.final_loss, 0.2);
}

TEST(TrainerTest, DeterministicAcrossRuns) {
  auto run = [] {
    Rng rng(8);
    std::vector<Tensor> inputs;
    std::vector<int> labels;
    for (int i = 0; i < 64; ++i) {
      inputs.push_back(Tensor::rand_uniform(Shape{3}, rng, -1.0f, 1.0f));
      labels.push_back(i % 3);
    }
    Rng model_rng(10);
    Sequential model = build_mlp(3, {5}, 3, ActivationKind::kReLU, model_rng);
    TrainConfig config;
    config.epochs = 3;
    config.batch_size = 16;
    fit(model, inputs, labels, config);
    return model.snapshot_params();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

TEST(TrainerTest, ValidatesInputs) {
  Sequential model = tiny_mlp();
  TrainConfig config;
  EXPECT_THROW(fit(model, {}, {}, config), Error);
  std::vector<Tensor> inputs{Tensor(Shape{4})};
  EXPECT_THROW(fit(model, inputs, {0, 1}, config), Error);
}

}  // namespace
}  // namespace dnnv::nn
