// Vendor flow — what a DNN IP vendor runs before release (paper Fig 1 left):
// train (or load) the production model, generate a functional-test suite
// with the combined method, inspect its coverage, and write the release
// package plus the serialised model.
//
// Usage:
//   ./build/examples/vendor_flow [--model mnist|cifar] [--tests 50]
//                                [--out vendor_release] [--key 12345]
#include <filesystem>
#include <iostream>

#include "coverage/parameter_coverage.h"
#include "coverage/report.h"
#include "exp/model_zoo.h"
#include "quant/quant_model.h"
#include "tensor/batch.h"
#include "testgen/combined_generator.h"
#include "util/cli.h"
#include "util/table.h"
#include "validate/test_suite.h"

int main(int argc, char** argv) {
  using namespace dnnv;
  const CliArgs args(argc, argv, {"model", "tests", "out", "key", "pool"});
  const std::string which = args.get_string("model", "cifar");
  const int num_tests = args.get_int("tests", 50);
  const std::string out_dir = args.get_string("out", "vendor_release");
  const auto key = static_cast<std::uint64_t>(args.get_int("key", 987654321));

  std::cout << "=== DNN IP vendor release flow ===\n";
  exp::ZooOptions options;
  options.verbose = true;
  auto trained =
      which == "mnist" ? exp::mnist_tanh(options) : exp::cifar_relu(options);
  std::cout << "model " << trained.name << " ("
            << trained.model.param_count() << " params, test accuracy "
            << format_percent(trained.test_accuracy) << ")\n";

  const auto pool_size = static_cast<std::int64_t>(args.get_int("pool", 500));
  const auto pool = which == "mnist" ? exp::digits_train(pool_size)
                                     : exp::shapes_train(pool_size);

  std::cout << "generating " << num_tests
            << " functional tests (combined method)...\n";
  cov::CoverageAccumulator coverage(
      static_cast<std::size_t>(trained.model.param_count()));
  testgen::CombinedGenerator::Options gen_options;
  gen_options.max_tests = num_tests;
  gen_options.coverage = trained.coverage;
  gen_options.gradient.coverage = trained.coverage;
  gen_options.gradient.steps = 60;
  const auto tests = testgen::CombinedGenerator(gen_options)
                         .generate(trained.model, pool.images,
                                   trained.item_shape, trained.num_classes,
                                   coverage);

  int from_training = 0;
  for (const auto& test : tests.tests) {
    if (test.source == testgen::TestSource::kTrainingSample) ++from_training;
  }
  std::cout << "  validation coverage VC(X) = "
            << format_percent(coverage.coverage()) << " (" << from_training
            << " training samples + "
            << tests.tests.size() - static_cast<std::size_t>(from_training)
            << " synthetic)\n";

  // Per-tensor coverage report — which layers the suite exercises.
  std::cout << "\nper-tensor coverage of the released suite:\n";
  TablePrinter table({"parameter tensor", "covered", "total", "fraction"});
  for (const auto& row :
       cov::per_layer_coverage(trained.model, coverage.covered())) {
    table.add_row({row.name, std::to_string(row.covered),
                   std::to_string(row.total), format_percent(row.fraction())});
  }
  table.print(std::cout);

  std::filesystem::create_directories(out_dir);
  auto suite = validate::TestSuite::create(trained.model, tests.tests);
  const std::string package_path = out_dir + "/functional_tests.pkg";
  suite.save_package(package_path, key);
  const std::string model_path = out_dir + "/ip_model.dnnv";
  trained.model.save_file(model_path);

  // ---- Quantized deliverable: the int8 artifact a hardware IP ships ----
  // Calibrate on the training pool, qualify the suite against the int8
  // engine's OWN outputs (the user validates the artifact, not the float
  // master), and package the quantized model with its CRC-protected format.
  std::cout << "\nquantizing for the int8 IP deliverable...\n";
  auto qmodel = quant::QuantModel::quantize(trained.model, pool.images);
  std::cout << "  " << qmodel.summary() << "\n";
  std::vector<Tensor> suite_inputs;
  for (const auto& test : tests.tests) suite_inputs.push_back(test.input);
  const auto int8_golden = qmodel.predict_labels(stack_batch(suite_inputs));
  int backend_agrees = 0;
  for (std::size_t i = 0; i < suite_inputs.size(); ++i) {
    backend_agrees += int8_golden[i] == suite.golden_labels()[i];
  }
  std::cout << "  int8 backend agrees with float golden on " << backend_agrees
            << "/" << suite_inputs.size()
            << " tests; analytic logit error bound "
            << qmodel.logit_error_bound() << "\n";
  auto quant_suite = validate::TestSuite::from_labels(suite_inputs, int8_golden);
  const std::string quant_package_path = out_dir + "/functional_tests_int8.pkg";
  quant_suite.save_package(quant_package_path, key);
  const std::string quant_model_path = out_dir + "/ip_model_int8.dqm8";
  qmodel.save_file(quant_model_path);

  std::cout << "\nrelease artifacts:\n"
            << "  " << package_path << "  (encrypted tests + golden outputs)\n"
            << "  " << model_path << "    (the IP itself — ships as a black box)\n"
            << "  " << quant_package_path
            << "  (suite qualified on the int8 engine)\n"
            << "  " << quant_model_path
            << "  (int8 weights + fixed-point requant, CRC-32 footer)\n"
            << "share the package key with licensed users: " << key << "\n";
  return 0;
}
