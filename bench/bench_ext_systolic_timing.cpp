// Extension — datasheet-style timing of the two IP models on a systolic
// accelerator, and the cost of replaying a 50-test validation suite.
#include <iostream>

#include "bench/bench_common.h"
#include "ip/systolic.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dnnv;
  const CliArgs args(argc, argv, {"rows", "cols", "paper-scale", "retrain"});
  bench::banner("bench_ext_systolic_timing",
                "extension — systolic-array cost model for the IP models");

  ip::SystolicConfig config;
  config.rows = args.get_int("rows", 16);
  config.cols = args.get_int("cols", 16);
  std::cout << "array " << config.rows << "x" << config.cols << " @ "
            << config.frequency_mhz << " MHz, "
            << config.memory_bytes_per_cycle << " B/cycle weight memory\n\n";

  const auto options = bench::zoo_options(args);
  for (const bool use_cifar : {false, true}) {
    auto trained = use_cifar ? exp::cifar_relu(options) : exp::mnist_tanh(options);
    const auto cost = ip::estimate_cost(trained.model, trained.item_shape, config);
    std::cout << trained.name << " (" << cost.total_macs / 1e6 << " MMACs):\n";
    TablePrinter table({"layer", "MACs", "cycles", "bound"});
    for (const auto& layer : cost.layers) {
      if (layer.macs == 0) continue;  // skip elementwise rows for brevity
      table.add_row({layer.name, std::to_string(layer.macs),
                     std::to_string(layer.cycles),
                     layer.memory_bound() ? "memory" : "compute"});
    }
    table.print(std::cout);
    std::cout << "  one inference: " << cost.total_cycles << " cycles = "
              << format_double(cost.latency_us(config), 1) << " us, array utilisation "
              << format_percent(cost.utilization(config)) << "\n";
    const auto replay = ip::suite_replay_cycles(cost, config, 50);
    std::cout << "  50-test validation suite replay: " << replay
              << " cycles = " << format_double(
                     static_cast<double>(replay) / config.frequency_mhz, 1)
              << " us (weights resident after the first test)\n\n";
  }
  std::cout << "validation cost is microseconds-scale even on a small array — "
               "the paper's premise that users can re-validate on every boot "
               "holds comfortably.\n";
  return 0;
}
