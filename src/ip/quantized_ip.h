// Int8 accelerator simulation with an explicit weight memory.
//
// DNN IPs ship as hardware accelerators whose quantised weights live in
// off-chip memory — exactly the surface the paper's threat model attacks
// (reverse-engineer the memory layout, substitute parameters). QuantizedIp
// simulates that deployment: parameters are symmetric int8 codes in a flat
// byte buffer, fault injection (bit flips, stuck-at, byte writes) acts on
// the BUFFER, and inference executes the codes on the quant:: integer
// engine — int8 GEMMs, int32 accumulators, fixed-point requantisation —
// the arithmetic a real IP performs. The pre-refactor behaviour
// (dequantise to float, run the float engine) remains selectable as
// QuantBackend::kDequantFloat for A/B comparisons.
#ifndef DNNV_IP_QUANTIZED_IP_H_
#define DNNV_IP_QUANTIZED_IP_H_

#include <cstdint>
#include <vector>

#include "ip/black_box_ip.h"
#include "nn/sequential.h"
#include "quant/quant_model.h"

namespace dnnv::ip {

/// Which engine executes the weight memory.
enum class QuantBackend {
  kInt8,         ///< quant::QuantModel integer engine (the default)
  kDequantFloat  ///< dequantise codes to float, run the float engine
};

/// Quantisation parameters of one tensor in the weight memory. Weights may
/// carry per-channel scales; `scale` keeps the per-tensor summary (the max
/// over channels) for error-bound style uses.
struct QuantTensorInfo {
  std::size_t memory_offset = 0;  ///< byte offset in the weight memory
  std::int64_t size = 0;          ///< scalar count
  float scale = 1.0f;             ///< max over channel_scales
  std::int64_t per_channel = 0;   ///< codes per scale entry (== size if single)
  std::vector<float> channel_scales;  ///< dequant: value = scale_c * int8
};

/// Black-box IP backed by an int8 weight memory (one byte per parameter,
/// biases included). Memory writes invalidate the execution state; the next
/// inference re-derives the engine's buffers from the bytes.
class QuantizedIp : public BlackBoxIp {
 public:
  /// Quantises with a built-in deterministic calibration pool (uniform
  /// random inputs over [0,1] and [-1,1]) — convenient for unit-scale
  /// models. Production flows should pass a representative pool.
  QuantizedIp(const nn::Sequential& model, Shape item_shape);

  /// Quantises with a caller-provided calibration pool and config.
  QuantizedIp(const nn::Sequential& model, Shape item_shape,
              const std::vector<Tensor>& calibration,
              const quant::QuantConfig& config = {},
              QuantBackend backend = QuantBackend::kInt8);

  /// Wraps an ALREADY-quantized artifact (e.g. loaded from a
  /// pipeline::Deliverable): the weight memory is initialised from the
  /// model's codes and the float mirror from their dequantization, so the
  /// fault-injection surface works identically on delivered IPs. There is
  /// no pre-quantization float master here — the artifact is its own
  /// reference, so max_quantization_error() reads 0 until the memory is
  /// faulted (clone_ip() constructs through this path too).
  QuantizedIp(quant::QuantModel shipped, Shape item_shape,
              QuantBackend backend = QuantBackend::kInt8);

  int predict(const Tensor& input) override;
  std::vector<int> predict_all(const std::vector<Tensor>& inputs) override;
  std::unique_ptr<BlackBoxIp> clone_ip() override;
  Shape input_shape() const override { return item_shape_; }
  int num_classes() const override { return num_classes_; }

  QuantBackend backend() const { return backend_; }
  void set_backend(QuantBackend backend) {
    backend_ = backend;
    invalidate_replicas();
  }

  // ---- Memory / fault-injection surface ----

  /// Size of the weight memory in bytes (one byte per parameter).
  std::size_t memory_size() const { return memory_.size(); }

  /// Raw memory read.
  std::uint8_t read_byte(std::size_t address) const;

  /// Raw memory write (e.g. malicious parameter substitution).
  void write_byte(std::size_t address, std::uint8_t value);

  /// Flips one bit (0..7, 7 = sign bit of the int8 weight).
  void flip_bit(std::size_t address, int bit);

  /// Per-tensor quantisation table (address layout documentation).
  const std::vector<QuantTensorInfo>& tensor_table() const { return table_; }

  /// Max |float weight − dequantised weight| over all parameters, each code
  /// dequantised with ITS OWN channel scale.
  float max_quantization_error() const;

  /// Worst-case |error| bound implied by the scales: max over every
  /// channel of scale_c / 2 (per-channel aware).
  float quantization_error_bound() const;

  // ---- Analysis hooks (vendor-side; not part of the black-box surface) ----

  /// The executed quantised model (current memory contents).
  const quant::QuantModel& quant_model();

  /// Float realization of the current memory (scale * int8 parameters) —
  /// hand this to cov::ParameterCoverage / the generators so coverage and
  /// suites target the weights the IP actually carries.
  nn::Sequential& reference_model();

 private:
  // The two backends refresh independently so fault-injection sweeps under
  // the default int8 backend never pay for the float mirror.
  void refresh_quant_if_dirty();
  void refresh_float_if_dirty();

  /// Builds memory_/table_ from qmodel_'s codes and snapshots
  /// original_params_ from model_ (both must be set). Does not touch the
  /// dirty flags — each constructor decides what still needs refreshing.
  void build_memory();

  nn::Sequential model_;                 // dequantised float-backend model
  quant::QuantModel qmodel_;             // int8-backend executable
  std::vector<float> original_params_;   // pre-quantisation float snapshot
  Shape item_shape_;
  int num_classes_ = 0;
  QuantBackend backend_ = QuantBackend::kInt8;
  std::vector<std::uint8_t> memory_;     // int8 two's complement per param
  std::vector<QuantTensorInfo> table_;
  bool quant_dirty_ = true;
  bool float_dirty_ = true;
};

}  // namespace dnnv::ip

#endif  // DNNV_IP_QUANTIZED_IP_H_
