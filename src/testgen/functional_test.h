// Functional-test value types shared by all generators.
#ifndef DNNV_TESTGEN_FUNCTIONAL_TEST_H_
#define DNNV_TESTGEN_FUNCTIONAL_TEST_H_

#include <vector>

#include "tensor/tensor.h"

namespace dnnv::testgen {

/// Where a functional test came from.
enum class TestSource {
  kTrainingSample,  ///< selected from the training pool (Algorithm 1)
  kSynthetic,       ///< synthesised by gradient descent (Algorithm 2)
  kRandom,          ///< random-control selection
};

/// One functional test: an input image the vendor will ship with its golden
/// output.
struct FunctionalTest {
  Tensor input;
  TestSource source = TestSource::kTrainingSample;
  /// Index into the candidate pool for selected tests, -1 for synthetic.
  std::int64_t pool_index = -1;
};

/// Output of a generation run: the ordered tests plus the coverage
/// trajectory (VC(X) after each test) — the series plotted in Fig 3.
struct GenerationResult {
  std::vector<FunctionalTest> tests;
  std::vector<double> coverage_after;
  double final_coverage = 0.0;
};

}  // namespace dnnv::testgen

#endif  // DNNV_TESTGEN_FUNCTIONAL_TEST_H_
