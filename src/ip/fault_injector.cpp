#include "ip/fault_injector.h"

#include "util/error.h"

namespace dnnv::ip {

MemoryFault FaultInjector::inject_random_bit_flip(Rng& rng) {
  const std::size_t address =
      static_cast<std::size_t>(rng.uniform_u64(ip_.memory_size()));
  const int bit = static_cast<int>(rng.uniform_u64(8));
  return inject_bit_flip(address, bit);
}

MemoryFault FaultInjector::inject_bit_flip(std::size_t address, int bit) {
  MemoryFault fault;
  fault.kind = MemoryFault::Kind::kBitFlip;
  fault.address = address;
  fault.bit = bit;
  fault.previous = ip_.read_byte(address);
  ip_.flip_bit(address, bit);
  return fault;
}

MemoryFault FaultInjector::inject_stuck_at(std::size_t address, int bit,
                                           bool stuck_high) {
  DNNV_CHECK(bit >= 0 && bit < 8, "bit index " << bit << " out of range");
  MemoryFault fault;
  fault.kind = stuck_high ? MemoryFault::Kind::kStuckAt1
                          : MemoryFault::Kind::kStuckAt0;
  fault.address = address;
  fault.bit = bit;
  fault.previous = ip_.read_byte(address);
  const std::uint8_t mask = static_cast<std::uint8_t>(1u << bit);
  const std::uint8_t updated =
      stuck_high ? static_cast<std::uint8_t>(fault.previous | mask)
                 : static_cast<std::uint8_t>(fault.previous & ~mask);
  ip_.write_byte(address, updated);
  return fault;
}

MemoryFault FaultInjector::inject_byte_write(std::size_t address,
                                             std::uint8_t value) {
  MemoryFault fault;
  fault.kind = MemoryFault::Kind::kByteWrite;
  fault.address = address;
  fault.value = value;
  fault.previous = ip_.read_byte(address);
  ip_.write_byte(address, value);
  return fault;
}

void FaultInjector::revert(const MemoryFault& fault) {
  ip_.write_byte(fault.address, fault.previous);
}

std::vector<MemoryFault> FaultInjector::inject_all(
    const std::vector<MemoryFault>& faults) {
  std::vector<MemoryFault> injected;
  injected.reserve(faults.size());
  for (const MemoryFault& f : faults) {
    switch (f.kind) {
      case MemoryFault::Kind::kBitFlip:
        injected.push_back(inject_bit_flip(f.address, f.bit));
        break;
      case MemoryFault::Kind::kStuckAt0:
        injected.push_back(inject_stuck_at(f.address, f.bit, false));
        break;
      case MemoryFault::Kind::kStuckAt1:
        injected.push_back(inject_stuck_at(f.address, f.bit, true));
        break;
      case MemoryFault::Kind::kByteWrite:
        injected.push_back(inject_byte_write(f.address, f.value));
        break;
    }
  }
  return injected;
}

void FaultInjector::revert_all(const std::vector<MemoryFault>& injected) {
  for (auto it = injected.rbegin(); it != injected.rend(); ++it) {
    revert(*it);
  }
}

}  // namespace dnnv::ip
