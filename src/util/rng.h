// Deterministic random number generation (xoshiro256**).
//
// Every stochastic component in dnnv takes an explicit Rng (or seed) so that
// datasets, training, attacks and experiments are exactly reproducible.
#ifndef DNNV_UTIL_RNG_H_
#define DNNV_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace dnnv {

/// Small, fast, high-quality PRNG (xoshiro256** by Blackman & Vigna) with
/// explicit seeding and support for deterministic stream splitting.
///
/// Not cryptographically secure; used for data synthesis, initialisation and
/// experiment sampling only.
class Rng {
 public:
  /// Seeds the generator; the full 256-bit state is expanded from the seed
  /// with SplitMix64 so nearby seeds yield uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) (bound > 0), without modulo bias.
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached pair).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Bernoulli draw.
  bool flip(double p_true);

  /// Derives an independent child generator; deterministic in (state, salt).
  /// Used to give each dataset sample / worker its own stream.
  Rng split(std::uint64_t salt) const;

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<int>& values);

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace dnnv

#endif  // DNNV_UTIL_RNG_H_
