// Layer-level tests: shapes, semantics, and finite-difference gradient
// verification across every layer type and activation kind.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation_layer.h"
#include "nn/builder.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/gradcheck.h"
#include "nn/loss.h"
#include "nn/maxpool2d.h"
#include "nn/normalize.h"
#include "nn/sequential.h"
#include "tensor/batch.h"
#include "util/error.h"

namespace dnnv::nn {
namespace {

// ---------- Activation scalar functions ----------

TEST(ActivationTest, ReluSemantics) {
  EXPECT_EQ(activate(ActivationKind::kReLU, -1.0f), 0.0f);
  EXPECT_EQ(activate(ActivationKind::kReLU, 2.5f), 2.5f);
  EXPECT_EQ(activate_grad(ActivationKind::kReLU, -1.0f), 0.0f);
  EXPECT_EQ(activate_grad(ActivationKind::kReLU, 1.0f), 1.0f);
}

TEST(ActivationTest, TanhSemantics) {
  EXPECT_NEAR(activate(ActivationKind::kTanh, 0.0f), 0.0f, 1e-6);
  EXPECT_NEAR(activate_grad(ActivationKind::kTanh, 0.0f), 1.0f, 1e-6);
  EXPECT_LT(activate_grad(ActivationKind::kTanh, 5.0f), 1e-3f);
}

TEST(ActivationTest, SigmoidSemantics) {
  EXPECT_NEAR(activate(ActivationKind::kSigmoid, 0.0f), 0.5f, 1e-6);
  EXPECT_NEAR(activate_grad(ActivationKind::kSigmoid, 0.0f), 0.25f, 1e-6);
}

TEST(ActivationTest, NamesRoundTrip) {
  for (const auto kind :
       {ActivationKind::kReLU, ActivationKind::kTanh, ActivationKind::kSigmoid,
        ActivationKind::kLeakyReLU}) {
    EXPECT_EQ(activation_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(activation_from_string("swish"), Error);
}

TEST(ActivationTest, ZeroRegionFlag) {
  EXPECT_TRUE(has_exact_zero_region(ActivationKind::kReLU));
  EXPECT_FALSE(has_exact_zero_region(ActivationKind::kTanh));
}

// ---------- Dense ----------

TEST(DenseTest, ForwardMatchesManual) {
  Rng rng(1);
  Dense layer(2, 3, rng);
  layer.weights() = Tensor(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  layer.bias() = Tensor(Shape{3}, {0.5f, -0.5f, 0.0f});
  const Tensor x(Shape{1, 2}, {1.0f, -1.0f});
  const Tensor y = layer.forward(x);
  EXPECT_FLOAT_EQ(y[0], 1 - 2 + 0.5f);
  EXPECT_FLOAT_EQ(y[1], 3 - 4 - 0.5f);
  EXPECT_FLOAT_EQ(y[2], 5 - 6);
}

TEST(DenseTest, OutputShapeValidation) {
  Rng rng(1);
  Dense layer(4, 2, rng);
  EXPECT_EQ(layer.output_shape(Shape{7, 4}), Shape({7, 2}));
  EXPECT_THROW(layer.output_shape(Shape{7, 3}), Error);
  EXPECT_THROW(layer.output_shape(Shape{4}), Error);
}

TEST(DenseTest, ParamViewsLayout) {
  Rng rng(1);
  Dense layer(3, 2, rng);
  layer.set_name("dense0");
  const auto views = layer.param_views();
  ASSERT_EQ(views.size(), 2u);
  EXPECT_EQ(views[0].name, "dense0.weight");
  EXPECT_EQ(views[0].size, 6);
  EXPECT_FALSE(views[0].is_bias);
  EXPECT_EQ(views[1].name, "dense0.bias");
  EXPECT_EQ(views[1].size, 2);
  EXPECT_TRUE(views[1].is_bias);
  EXPECT_EQ(layer.param_count(), 8);
}

TEST(DenseTest, SaveLoadRoundTrip) {
  Rng rng(2);
  Dense layer(3, 2, rng);
  ByteWriter writer;
  layer.save(writer);
  ByteReader reader(writer.take());
  EXPECT_EQ(reader.read_string(), "dense");
  auto loaded = Dense::load(reader);
  EXPECT_EQ(loaded->in_features(), 3);
  EXPECT_EQ(loaded->out_features(), 2);
  for (std::int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(loaded->weights()[i], layer.weights()[i]);
  }
}

// ---------- Conv2d ----------

TEST(Conv2dTest, KnownConvolution) {
  Rng rng(1);
  Conv2d::Config config;
  config.in_channels = 1;
  config.out_channels = 1;
  config.kernel = 3;
  config.stride = 1;
  config.pad = 0;
  Conv2d layer(config, rng);
  layer.weights().fill(1.0f);  // 3x3 box filter
  layer.bias().fill(0.0f);
  Tensor x(Shape{1, 1, 3, 3});
  x.fill(2.0f);
  const Tensor y = layer.forward(x);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 18.0f);
}

TEST(Conv2dTest, PaddedShapePreserved) {
  Rng rng(1);
  Conv2d::Config config;
  config.in_channels = 2;
  config.out_channels = 4;
  config.kernel = 3;
  config.pad = 1;
  Conv2d layer(config, rng);
  EXPECT_EQ(layer.output_shape(Shape{3, 2, 8, 8}), Shape({3, 4, 8, 8}));
  EXPECT_THROW(layer.output_shape(Shape{3, 1, 8, 8}), Error);
}

TEST(Conv2dTest, BiasAddsUniformOffset) {
  Rng rng(1);
  Conv2d::Config config;
  config.in_channels = 1;
  config.out_channels = 1;
  config.kernel = 1;
  Conv2d layer(config, rng);
  layer.weights().fill(0.0f);
  layer.bias().fill(3.5f);
  Tensor x(Shape{1, 1, 2, 2});
  const Tensor y = layer.forward(x);
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y[i], 3.5f);
}

// ---------- MaxPool ----------

TEST(MaxPoolTest, SelectsWindowMaximum) {
  MaxPool2d pool(2, 2);
  Tensor x(Shape{1, 1, 2, 2}, {1, 5, 3, 2});
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  MaxPool2d pool(2, 2);
  Tensor x(Shape{1, 1, 2, 2}, {1, 5, 3, 2});
  pool.forward(x);
  Tensor grad_out(Shape{1, 1, 1, 1}, {7.0f});
  const Tensor grad_in = pool.backward(grad_out);
  EXPECT_FLOAT_EQ(grad_in[0], 0.0f);
  EXPECT_FLOAT_EQ(grad_in[1], 7.0f);  // position of the max
  EXPECT_FLOAT_EQ(grad_in[2], 0.0f);
}

TEST(MaxPoolTest, HalvesSpatialDims) {
  MaxPool2d pool(2, 2);
  EXPECT_EQ(pool.output_shape(Shape{1, 3, 8, 6}), Shape({1, 3, 4, 3}));
}

// ---------- Flatten / Normalize ----------

TEST(FlattenTest, RoundTrip) {
  Flatten flatten;
  Tensor x(Shape{2, 3, 4, 5});
  const Tensor y = flatten.forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 60}));
  const Tensor back = flatten.backward(Tensor(Shape{2, 60}));
  EXPECT_EQ(back.shape(), x.shape());
}

TEST(NormalizeTest, CentresAndScales) {
  Normalize norm(0.5f, 0.5f);
  Tensor x(Shape{1, 4}, {0.0f, 0.5f, 1.0f, 0.75f});
  const Tensor y = norm.forward(x);
  EXPECT_FLOAT_EQ(y[0], -1.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 1.0f);
  EXPECT_FLOAT_EQ(y[3], 0.5f);
  const Tensor g = norm.backward(Tensor(Shape{1, 4}, {1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(g[0], 2.0f);  // 1/scale
}

TEST(NormalizeTest, ZeroScaleRejected) {
  EXPECT_THROW(Normalize(0.5f, 0.0f), Error);
}

// ---------- Gradient checks (property sweeps) ----------

struct GradCase {
  std::string name;
  ActivationKind activation;
};

class ModelGradCheck : public ::testing::TestWithParam<GradCase> {};

TEST_P(ModelGradCheck, MlpParamAndInputGradients) {
  Rng rng(77);
  Sequential model = build_mlp(12, {10, 8}, 4, GetParam().activation, rng);
  Rng data_rng(5);
  const Tensor x = Tensor::rand_uniform(Shape{12}, data_rng, -1.0f, 1.0f);

  Rng check_rng(9);
  const auto params = check_param_gradients(model, x, 2, check_rng, 80, 1e-3);
  EXPECT_LT(params.bad_fraction(2e-2), 0.06) << "param gradients diverge";
  const auto inputs = check_input_gradients(model, x, 2, check_rng, 12, 1e-3);
  EXPECT_LT(inputs.bad_fraction(2e-2), 0.10) << "input gradients diverge";
}

TEST_P(ModelGradCheck, ConvNetParamAndInputGradients) {
  Rng rng(78);
  ConvNetSpec spec;
  spec.in_channels = 2;
  spec.in_height = 8;
  spec.in_width = 8;
  spec.conv_channels = {3, 3};
  spec.dense_units = {10};
  spec.num_classes = 3;
  spec.activation = GetParam().activation;
  Sequential model = build_convnet(spec, rng);

  Rng data_rng(6);
  const Tensor x = Tensor::rand_uniform(Shape{2, 8, 8}, data_rng, 0.0f, 1.0f);
  Rng check_rng(10);
  const auto params = check_param_gradients(model, x, 1, check_rng, 80, 1e-3);
  EXPECT_LT(params.bad_fraction(3e-2), 0.06) << "param gradients diverge";
  const auto inputs = check_input_gradients(model, x, 1, check_rng, 60, 1e-3);
  EXPECT_LT(inputs.bad_fraction(3e-2), 0.08) << "input gradients diverge";
}

INSTANTIATE_TEST_SUITE_P(
    Activations, ModelGradCheck,
    ::testing::Values(GradCase{"relu", ActivationKind::kReLU},
                      GradCase{"tanh", ActivationKind::kTanh},
                      GradCase{"sigmoid", ActivationKind::kSigmoid},
                      GradCase{"leaky", ActivationKind::kLeakyReLU}),
    [](const auto& info) { return info.param.name; });

// Sweep conv geometries with a fixed activation.
struct ConvGeom {
  std::string name;
  std::int64_t kernel;
  std::int64_t stride;
  std::int64_t pad;
};

class ConvGeometryGradCheck : public ::testing::TestWithParam<ConvGeom> {};

TEST_P(ConvGeometryGradCheck, GradientsMatchFiniteDifference) {
  const auto geom = GetParam();
  Rng rng(80);
  Sequential model;
  Conv2d::Config config;
  config.in_channels = 2;
  config.out_channels = 3;
  config.kernel = geom.kernel;
  config.stride = geom.stride;
  config.pad = geom.pad;
  model.add(std::make_unique<Conv2d>(config, rng));
  model.add(std::make_unique<ActivationLayer>(ActivationKind::kTanh));
  model.add(std::make_unique<Flatten>());
  const Shape out = model.output_shape(Shape{1, 2, 9, 9});
  model.add(std::make_unique<Dense>(out[1], 3, rng));

  Rng data_rng(4);
  const Tensor x = Tensor::rand_uniform(Shape{2, 9, 9}, data_rng, -1.0f, 1.0f);
  Rng check_rng(12);
  const auto result = check_param_gradients(model, x, 0, check_rng, 60, 1e-3);
  EXPECT_LT(result.bad_fraction(3e-2), 0.07);
}

INSTANTIATE_TEST_SUITE_P(Geometries, ConvGeometryGradCheck,
                         ::testing::Values(ConvGeom{"k3s1p0", 3, 1, 0},
                                           ConvGeom{"k3s1p1", 3, 1, 1},
                                           ConvGeom{"k5s1p2", 5, 1, 2},
                                           ConvGeom{"k3s2p1", 3, 2, 1},
                                           ConvGeom{"k1s1p0", 1, 1, 0}),
                         [](const auto& info) { return info.param.name; });

// ---------- Batched vs per-item consistency ----------

TEST(BatchConsistencyTest, BatchedForwardEqualsPerItem) {
  Rng rng(90);
  ConvNetSpec spec;
  spec.in_channels = 1;
  spec.in_height = 10;
  spec.in_width = 10;
  spec.conv_channels = {4, 4};
  spec.dense_units = {8};
  spec.num_classes = 5;
  Sequential model = build_convnet(spec, rng);

  Rng data_rng(91);
  std::vector<Tensor> items;
  for (int i = 0; i < 4; ++i) {
    items.push_back(Tensor::rand_uniform(Shape{1, 10, 10}, data_rng, 0.0f, 1.0f));
  }
  const Tensor batched = model.forward(stack_batch(items));
  for (int i = 0; i < 4; ++i) {
    const Tensor single = model.forward(stack_batch({items[static_cast<std::size_t>(i)]}));
    for (std::int64_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(batched[i * 5 + j], single[j], 1e-4f);
    }
  }
}

}  // namespace
}  // namespace dnnv::nn
