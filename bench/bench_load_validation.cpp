// bench_load_validation — million-request-class load harness for the
// network-facing validation server (net::ValidationServer).
//
// An in-process server is started on an ephemeral loopback port and driven
// by real TCP clients (net::ValidationClient), so every number includes the
// full wire path: framing, admission, per-connection backpressure, the
// micro-batched scheduler, and verdict streaming.
//
// Two phases:
//   * matrix — a declarative cell per model × backend × stream-policy
//     combination, each run with --matrix-clients closed-loop connections;
//     per-cell throughput and p50/p99/p999 request latency.
//   * headline — the mixed arrival mix (every cell config interleaved)
//     three ways: one NAIVE sequential client (fresh connection + load +
//     open per request — the pre-serving flow on the wire), one persistent
//     pipelined client, and --clients persistent concurrent clients. The
//     acceptance number (>= 3x at 16 clients) is persistent-16 over
//     naive-1: what the serving subsystem's session reuse, shard cache and
//     cross-session scheduler buy over per-request qualification. The
//     persistent-1 row is printed too, so single-connection wire overhead
//     is visible rather than folded into the headline.
//
//   bench_load_validation [--clients 16] [--matrix-clients 4]
//                         [--requests 30] [--tests 50] [--quick]
//                         [--open-loop] [--rate 50] [--min-scaling 0]
//                         [--json [path|family]] [--baseline path]
//                         [--max-regress pct]
//
// --open-loop switches the generator from closed loop (next request after
// the previous verdict) to open loop: each client fires at a fixed --rate
// (requests/s), submits are pipelined, and latency is measured from the
// SCHEDULED arrival — queueing delay is charged, not hidden (no
// coordinated omission). --quick shrinks to tiny zoo models for CI smoke;
// --json/--baseline emit and gate the machine-readable table
// (per-host baseline families, see bench/bench_json.h).
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <iomanip>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "exp/model_zoo.h"
#include "net/client.h"
#include "net/server.h"
#include "pipeline/service.h"
#include "pipeline/vendor.h"
#include "quant/qconv.h"
#include "quant/qgemm.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/table.h"

namespace {

using namespace dnnv;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kKey = 0x10AD;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One cell of the declarative load matrix.
struct Workload {
  std::string model;  ///< zoo model name
  std::string path;   ///< deliverable file the clients load over the wire
  pipeline::BackendKind backend = pipeline::BackendKind::kFloat;
  pipeline::StreamPolicy policy = pipeline::StreamPolicy::kFullReplay;

  std::string label() const {
    return model + "_" +
           (backend == pipeline::BackendKind::kInt8 ? "int8" : "float") + "_" +
           (policy == pipeline::StreamPolicy::kEarlyExit ? "early" : "full");
  }
};

struct CellResult {
  std::string label;
  int clients = 0;
  std::size_t requests = 0;
  double seconds = 0.0;
  double rps = 0.0;
  double p50 = 0.0, p99 = 0.0, p999 = 0.0;  // seconds
  bool all_passed = true;
};

/// Releases all client threads at one instant so the cell clock measures
/// concurrent load, not connection setup.
struct StartGate {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t ready = 0;
  bool released = false;
  Clock::time_point start;

  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex);
    ++ready;
    cv.notify_all();
    cv.wait(lock, [this] { return released; });
  }

  Clock::time_point release(std::size_t expected) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return ready >= expected; });
    released = true;
    start = Clock::now();
    cv.notify_all();
    return start;
  }
};

/// One closed- or open-loop client: connect, load + open every workload in
/// the mix, then drive `requests` submits round-robin across the mix.
void run_client(const std::string& host, std::uint16_t port,
                const std::vector<Workload>& mix, int idx, int requests,
                double interval, StartGate& gate,
                std::vector<double>& latencies, char& all_passed) {
  auto client = net::ValidationClient::connect(host, port);
  struct OpenSession {
    std::uint32_t id = 0;
    bool stream = false;
  };
  std::vector<OpenSession> sessions;
  sessions.reserve(mix.size());
  for (const Workload& w : mix) {
    const net::LoadResponse loaded = client.load(w.path, kKey);
    pipeline::SessionConfig config;
    config.backend = w.backend;
    config.policy = w.policy;
    const net::OpenResponse opened = client.open(loaded.deliverable_id, config);
    sessions.push_back(
        {opened.session_id, w.policy == pipeline::StreamPolicy::kEarlyExit});
  }
  gate.arrive_and_wait();
  bool ok = true;
  if (interval <= 0.0) {
    // Closed loop: one request in flight, next submitted on its verdict.
    for (int k = 0; k < requests; ++k) {
      const OpenSession& s = sessions[(idx + k) % sessions.size()];
      const auto t0 = Clock::now();
      const validate::Verdict verdict =
          client.await_verdict(client.submit(s.id, s.stream));
      latencies[static_cast<std::size_t>(k)] = seconds_since(t0);
      ok &= verdict.passed;
    }
  } else {
    // Open loop: arrivals on a fixed schedule, submits pipelined, latency
    // charged from the scheduled arrival (queueing delay included).
    constexpr std::size_t kDepth = 8;
    struct InFlight {
      std::uint32_t submit_id = 0;
      Clock::time_point scheduled;
      std::size_t slot = 0;
    };
    std::deque<InFlight> inflight;
    const auto begin = gate.start;
    auto drain_one = [&] {
      const InFlight head = inflight.front();
      inflight.pop_front();
      ok &= client.await_verdict(head.submit_id).passed;
      latencies[head.slot] =
          std::chrono::duration<double>(Clock::now() - head.scheduled).count();
    };
    for (int k = 0; k < requests; ++k) {
      const auto scheduled =
          begin + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(k * interval));
      std::this_thread::sleep_until(scheduled);
      const OpenSession& s = sessions[(idx + k) % sessions.size()];
      inflight.push_back({client.submit(s.id, s.stream), scheduled,
                          static_cast<std::size_t>(k)});
      while (inflight.size() >= kDepth) drain_one();
    }
    while (!inflight.empty()) drain_one();
  }
  client.goodbye();
  all_passed = ok ? 1 : 0;
}

CellResult run_cell(const std::string& label, const std::string& host,
                    std::uint16_t port, const std::vector<Workload>& mix,
                    int clients, int requests_per_client, double interval) {
  CellResult cell;
  cell.label = label;
  cell.clients = clients;
  cell.requests =
      static_cast<std::size_t>(clients) *
      static_cast<std::size_t>(requests_per_client);
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients),
      std::vector<double>(static_cast<std::size_t>(requests_per_client), 0.0));
  std::vector<char> passed(static_cast<std::size_t>(clients), 1);
  StartGate gate;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      run_client(host, port, mix, c, requests_per_client, interval, gate,
                 latencies[static_cast<std::size_t>(c)],
                 passed[static_cast<std::size_t>(c)]);
    });
  }
  const auto start = gate.release(static_cast<std::size_t>(clients));
  for (auto& t : threads) t.join();
  cell.seconds = seconds_since(start);
  std::vector<double> all;
  all.reserve(cell.requests);
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  for (const char p : passed) cell.all_passed &= p != 0;
  cell.rps = cell.seconds > 0.0
                 ? static_cast<double>(cell.requests) / cell.seconds
                 : 0.0;
  cell.p50 = bench::latency_percentile(all, 0.50);
  cell.p99 = bench::latency_percentile(all, 0.99);
  cell.p999 = bench::latency_percentile(all, 0.999);
  return cell;
}

/// The naive sequential baseline: every request pays the whole wire flow —
/// fresh TCP connection, deliverable load, session open, verdict, goodbye —
/// the way one-shot qualification would use the server.
CellResult run_naive(const std::string& host, std::uint16_t port,
                     const std::vector<Workload>& mix, int requests) {
  CellResult cell;
  cell.label = "naive";
  cell.clients = 1;
  cell.requests = static_cast<std::size_t>(requests);
  std::vector<double> latencies(static_cast<std::size_t>(requests), 0.0);
  const auto start = Clock::now();
  for (int k = 0; k < requests; ++k) {
    const Workload& w = mix[static_cast<std::size_t>(k) % mix.size()];
    const auto t0 = Clock::now();
    auto client = net::ValidationClient::connect(host, port);
    const net::LoadResponse loaded = client.load(w.path, kKey);
    pipeline::SessionConfig config;
    config.backend = w.backend;
    config.policy = w.policy;
    const net::OpenResponse opened = client.open(loaded.deliverable_id, config);
    cell.all_passed &= client.validate(opened.session_id).passed;
    client.goodbye();
    latencies[static_cast<std::size_t>(k)] = seconds_since(t0);
  }
  cell.seconds = seconds_since(start);
  cell.rps = cell.seconds > 0.0
                 ? static_cast<double>(cell.requests) / cell.seconds
                 : 0.0;
  cell.p50 = bench::latency_percentile(latencies, 0.50);
  cell.p99 = bench::latency_percentile(latencies, 0.99);
  cell.p999 = bench::latency_percentile(latencies, 0.999);
  return cell;
}

/// Best-of-`reps` wrapper for the gated headline cells: raw throughput on
/// an oversubscribed host is bimodal (scheduler luck), and the upper
/// envelope is the stable, comparable number. Verdict correctness is
/// demanded of EVERY repetition, not just the kept one.
template <typename RunCell>
CellResult best_of(int reps, const RunCell& run) {
  CellResult best = run();
  bool all_passed = best.all_passed;
  for (int r = 1; r < reps; ++r) {
    CellResult next = run();
    all_passed &= next.all_passed;
    if (next.rps > best.rps) best = next;
  }
  best.all_passed = all_passed;
  return best;
}

std::string ms(double seconds) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(2) << seconds * 1e3;
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv,
                       {"clients", "matrix-clients", "requests", "reps",
                        "tests",
                        "quick", "open-loop", "rate", "min-scaling",
                        "paper-scale", "retrain", "json", "baseline",
                        "max-regress"});
    const bool quick = args.get_bool("quick", false);
    const int clients = args.get_int("clients", 16);
    const int matrix_clients = args.get_int("matrix-clients", 4);
    // Even --quick needs a few dozen requests per client: the gated
    // aggregate rates are means over this sample.
    const int requests = args.get_int("requests", quick ? 40 : 100);
    const int reps = args.get_int("reps", 3);
    DNNV_CHECK(reps > 0, "--reps must be positive");
    const int num_tests = args.get_int("tests", quick ? 24 : 50);
    const bool open_loop = args.get_bool("open-loop", false);
    const double rate = args.get_double("rate", 50.0);
    const double interval = open_loop ? 1.0 / rate : 0.0;
    const double min_scaling = args.get_double("min-scaling", 0.0);
    DNNV_CHECK(clients > 0 && matrix_clients > 0 && requests > 0,
               "--clients/--matrix-clients/--requests must be positive");

    bench::banner("validation server load",
                  "network serving of SS V's deployment story: load/open/"
                  "submit/stream over TCP");
    std::cout << "engine: " << quant::qgemm_config_string()
              << " conv=" << quant::qconv_path_name() << "\n"
              << "generator: " << (open_loop ? "open loop" : "closed loop");
    if (open_loop) std::cout << " @ " << rate << " req/s per client";
    std::cout << "\n";

    auto zoo = bench::zoo_options(args);
    zoo.tiny = quick;

    // ---- Vendor side: one int8-qualified deliverable per zoo model.
    std::vector<std::string> cleanup;
    std::vector<Workload> matrix;
    for (const bool use_cifar : {false, true}) {
      const auto trained = use_cifar ? exp::cifar_relu(zoo) : exp::mnist_tanh(zoo);
      const auto pool = use_cifar ? exp::shapes_train(300) : exp::digits_train(300);
      pipeline::VendorOptions options;
      options.method = "greedy";
      options.backend = "int8";
      options.num_tests = num_tests;
      options.generator.coverage = trained.coverage;
      options.model_name = trained.name;
      pipeline::Deliverable bundle = pipeline::VendorPipeline(options).run(
          trained.model, trained.item_shape, trained.num_classes, pool.images);
      const std::string path = trained.name + "-load-bench.bin";
      bundle.save_file(path, kKey);
      cleanup.push_back(path);
      for (const auto backend :
           {pipeline::BackendKind::kFloat, pipeline::BackendKind::kInt8}) {
        for (const auto policy : {pipeline::StreamPolicy::kFullReplay,
                                  pipeline::StreamPolicy::kEarlyExit}) {
          matrix.push_back({trained.name, path, backend, policy});
        }
      }
    }

    // ---- Server: in-process, ephemeral loopback port, real TCP clients.
    net::ServerConfig server_config;
    server_config.max_connections = static_cast<std::size_t>(clients) + 4;
    server_config.admission_queue = 8;
    net::ValidationServer server(server_config);
    const std::uint16_t port = server.port();
    std::cout << "server: 127.0.0.1:" << port << ", "
              << server_config.max_connections << " connection slots\n\n";

    // Warmup: one pass over every cell config fills device pools and lane
    // label caches, so the cells measure steady-state serving.
    run_cell("warmup", "127.0.0.1", port, matrix, 1, static_cast<int>(matrix.size()),
             0.0);

    // ---- Matrix phase.
    std::vector<bench::BenchMetric> metrics;
    std::vector<CellResult> cells;
    for (const Workload& w : matrix) {
      const std::vector<Workload> mix = {w};
      cells.push_back(run_cell(w.label(), "127.0.0.1", port, mix,
                               matrix_clients, requests, interval));
    }

    // ---- Headline phase: the mixed mix — naive sequential, persistent
    // sequential, persistent concurrent.
    const CellResult naive = best_of(reps, [&] {
      return run_naive("127.0.0.1", port, matrix, requests * 2);
    });
    const CellResult mixed_1 = best_of(reps, [&] {
      return run_cell("mixed", "127.0.0.1", port, matrix, 1, requests,
                      interval);
    });
    const CellResult mixed_n = best_of(reps, [&] {
      return run_cell("mixed", "127.0.0.1", port, matrix, clients, requests,
                      interval);
    });
    const double scaling = naive.rps > 0.0 ? mixed_n.rps / naive.rps : 0.0;
    const double conn_scaling =
        mixed_1.rps > 0.0 ? mixed_n.rps / mixed_1.rps : 0.0;

    // ---- Report: human table + machine-readable metric series.
    TablePrinter table({"cell", "clients", "requests", "req/s", "p50 ms",
                        "p99 ms", "p99.9 ms", "verdicts"});
    bool ok = true;
    // Per-matrix-cell numbers (a few dozen requests each) swing 40%+ between
    // runs on a loaded host, so they stay printed diagnostics; only the
    // aggregate mixed/naive throughputs enter the gated metric series.
    // Latency percentiles never gate at all — microsecond-scale tails over
    // these sample sizes spike 4x on scheduler noise (the same call
    // bench_service_throughput made).
    auto add = [&](const CellResult& cell, bool gate) {
      table.add_row({cell.label, std::to_string(cell.clients),
                     std::to_string(cell.requests),
                     format_double(cell.rps, 1), ms(cell.p50), ms(cell.p99),
                     ms(cell.p999), cell.all_passed ? "SECURE" : "BUG"});
      ok &= cell.all_passed;
      if (!gate) return;
      const std::string prefix =
          cell.label + "_c" + std::to_string(cell.clients);
      metrics.push_back({prefix + "_rps", cell.rps, "1/s", true});
    };
    for (const CellResult& cell : cells) add(cell, false);
    add(naive, true);
    add(mixed_1, true);
    add(mixed_n, true);
    table.print(std::cout);

    std::cout << "\nheadline: " << format_double(naive.rps, 1)
              << " req/s naive sequential -> " << format_double(mixed_n.rps, 1)
              << " req/s @ " << clients << " persistent clients = "
              << format_double(scaling, 2) << "x serving scaling"
              << " (persistent 1-client: " << format_double(mixed_1.rps, 1)
              << " req/s, connection scaling " << format_double(conn_scaling, 2)
              << "x)\n";
    // connection_scaling (mixed_n vs mixed_1) is printed but not gated: on a
    // single-core host both sides are syscall-bound and the ratio jitters
    // past any useful threshold.
    metrics.push_back({"serving_scaling", scaling, "x", true});

    const auto sstats = server.stats();
    const auto vstats = server.service().stats();
    std::cout << "server: " << sstats.accepted << " accepted, "
              << sstats.rejected_busy << " busy-rejected, " << sstats.requests
              << " frames, " << sstats.submits << " submits (peak "
              << sstats.peak_inflight_submits << " in flight/conn)\n"
              << "scheduler: " << vstats.batches << " micro-batches, "
              << vstats.predicted << " tests inferred, " << vstats.cache_served
              << " served from lane caches\n";
    server.stop();
    for (const std::string& path : cleanup) std::remove(path.c_str());

    if (!ok) {
      std::cerr << "FAIL: not every verdict was SECURE\n";
      return 1;
    }
    if (min_scaling > 0.0 && scaling < min_scaling) {
      std::cerr << "FAIL: serving scaling " << scaling << "x < required "
                << min_scaling << "x\n";
      return 1;
    }

    if (args.has("json")) {
      const std::string path = bench::resolve_json_out(
          "load_validation", args.get_string("json", ""));
      std::map<std::string, std::string> config;
      config["quick"] = quick ? "1" : "0";
      config["clients"] = std::to_string(clients);
      config["matrix_clients"] = std::to_string(matrix_clients);
      config["requests"] = std::to_string(requests);
      config["tests"] = std::to_string(num_tests);
      config["open_loop"] = open_loop ? "1" : "0";
      bench::write_bench_json(path, "load_validation", config, metrics);
    }
    if (args.has("baseline")) {
      const std::string baseline = bench::resolve_baseline_arg(
          "load_validation", args.get_string("baseline", ""));
      // Wide by design: this gate is for catching structural serving
      // regressions (losing the shard cache, serializing the scheduler —
      // integer-factor drops), and on an oversubscribed single-core host
      // even best-of-N throughput keeps ~±35% of scheduler-luck spread.
      const double max_regress = args.get_double("max-regress", 45.0);
      std::cout << "\ndiff vs " << baseline << " (max regression "
                << max_regress << "%):\n";
      const int regressions =
          bench::diff_against_baseline(metrics, baseline, max_regress);
      if (regressions > 0) {
        std::cerr << regressions << " metric(s) regressed beyond "
                  << max_regress << "%\n";
        return 1;
      }
    }
    return 0;
  } catch (const dnnv::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
