// Dataset tests: determinism, value ranges, labels, shapes, distinctness,
// and learnability of the synthetic data.
#include <gtest/gtest.h>

#include <set>

#include "data/digits.h"
#include "data/noise.h"
#include "data/ood.h"
#include "data/render.h"
#include "data/shapes.h"
#include "util/error.h"

namespace dnnv::data {
namespace {

template <typename DatasetT>
void expect_deterministic(const DatasetT& a, const DatasetT& b) {
  for (const std::int64_t idx : {std::int64_t{0}, std::int64_t{5}}) {
    const Sample sa = a.get(idx);
    const Sample sb = b.get(idx);
    EXPECT_EQ(sa.label, sb.label);
    ASSERT_EQ(sa.image.shape(), sb.image.shape());
    for (std::int64_t i = 0; i < sa.image.numel(); ++i) {
      ASSERT_EQ(sa.image[i], sb.image[i]) << "pixel " << i << " index " << idx;
    }
  }
}

template <typename DatasetT>
void expect_in_unit_range(const DatasetT& dataset, int samples) {
  for (int idx = 0; idx < samples; ++idx) {
    const Sample s = dataset.get(idx);
    for (std::int64_t i = 0; i < s.image.numel(); ++i) {
      ASSERT_GE(s.image[i], 0.0f);
      ASSERT_LE(s.image[i], 1.0f);
    }
  }
}

// ---------- Digits ----------

TEST(DigitsTest, ShapeAndClasses) {
  DigitsDataset dataset(1, 100);
  EXPECT_EQ(dataset.size(), 100);
  EXPECT_EQ(dataset.item_shape(), Shape({1, 28, 28}));
  EXPECT_EQ(dataset.num_classes(), 10);
}

TEST(DigitsTest, DeterministicPerIndex) {
  expect_deterministic(DigitsDataset(7, 10), DigitsDataset(7, 10));
}

TEST(DigitsTest, DifferentSeedsDiffer) {
  const Sample a = DigitsDataset(1, 10).get(0);
  const Sample b = DigitsDataset(2, 10).get(0);
  double diff = 0.0;
  for (std::int64_t i = 0; i < a.image.numel(); ++i) {
    diff += std::abs(a.image[i] - b.image[i]);
  }
  EXPECT_GT(diff, 1.0);
}

TEST(DigitsTest, PixelsInRangeAndLabelsValid) {
  DigitsDataset dataset(3, 30);
  expect_in_unit_range(dataset, 30);
  std::set<int> labels;
  for (int i = 0; i < 30; ++i) {
    const int label = dataset.get(i).label;
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 10);
    labels.insert(label);
  }
  EXPECT_GE(labels.size(), 6u);  // 30 draws should hit most classes
}

TEST(DigitsTest, DigitsHaveInk) {
  DigitsDataset dataset(3, 20);
  for (int i = 0; i < 20; ++i) {
    const Sample s = dataset.get(i);
    double ink = 0.0;
    for (std::int64_t p = 0; p < s.image.numel(); ++p) ink += s.image[p];
    // A stroke-rendered digit must have meaningfully bright pixels.
    EXPECT_GT(ink, 10.0) << "sample " << i << " looks blank";
  }
}

TEST(DigitsTest, OutOfRangeThrows) {
  DigitsDataset dataset(1, 5);
  EXPECT_THROW(dataset.get(5), Error);
  EXPECT_THROW(dataset.get(-1), Error);
}

TEST(DigitsTest, CustomImageSize) {
  DigitsDataset dataset(1, 5, 16);
  EXPECT_EQ(dataset.get(0).image.shape(), Shape({1, 16, 16}));
}

// ---------- Shapes ----------

TEST(ShapesTest, ShapeAndClasses) {
  ShapesDataset dataset(1, 50);
  EXPECT_EQ(dataset.item_shape(), Shape({3, 32, 32}));
  EXPECT_EQ(dataset.num_classes(), 10);
}

TEST(ShapesTest, DeterministicPerIndex) {
  expect_deterministic(ShapesDataset(9, 10), ShapesDataset(9, 10));
}

TEST(ShapesTest, PixelsInRange) {
  expect_in_unit_range(ShapesDataset(4, 20), 20);
}

TEST(ShapesTest, AllClassesAppear) {
  ShapesDataset dataset(5, 300);
  std::set<int> labels;
  for (int i = 0; i < 300; ++i) labels.insert(dataset.get(i).label);
  EXPECT_EQ(labels.size(), 10u);
}

TEST(ShapesTest, ClassNames) {
  EXPECT_STREQ(ShapesDataset::class_name(0), "disc");
  EXPECT_STREQ(ShapesDataset::class_name(9), "d-stripe");
  EXPECT_THROW(ShapesDataset::class_name(10), Error);
}

TEST(ShapesTest, ImagesAreColourful) {
  // Channels must differ (not greyscale) for most samples.
  ShapesDataset dataset(6, 10);
  int colourful = 0;
  for (int i = 0; i < 10; ++i) {
    const Sample s = dataset.get(i);
    const std::int64_t plane = 32 * 32;
    double diff = 0.0;
    for (std::int64_t p = 0; p < plane; ++p) {
      diff += std::abs(s.image[p] - s.image[plane + p]);
    }
    if (diff > 10.0) ++colourful;
  }
  EXPECT_GE(colourful, 8);
}

// ---------- OOD / Noise ----------

TEST(OodTest, MatchesRequestedGeometry) {
  OodDataset grey(1, 10, 1, 28);
  EXPECT_EQ(grey.get(0).image.shape(), Shape({1, 28, 28}));
  OodDataset colour(1, 10, 3, 32);
  EXPECT_EQ(colour.get(3).image.shape(), Shape({3, 32, 32}));
  EXPECT_EQ(colour.num_classes(), 0);
  EXPECT_EQ(colour.get(0).label, -1);
}

TEST(OodTest, DeterministicAndInRange) {
  expect_deterministic(OodDataset(2, 10, 3, 32), OodDataset(2, 10, 3, 32));
  expect_in_unit_range(OodDataset(2, 10, 3, 32), 10);
}

TEST(OodTest, HasSpatialStructure) {
  // Neighbouring pixels must correlate (unlike iid noise).
  const Sample s = OodDataset(3, 5, 1, 32).get(0);
  double adjacent_diff = 0.0;
  double random_diff = 0.0;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const int y = rng.uniform_int(0, 30);
    const int x = rng.uniform_int(0, 30);
    adjacent_diff += std::abs(s.image[y * 32 + x] - s.image[y * 32 + x + 1]);
    const int y2 = rng.uniform_int(0, 31);
    const int x2 = rng.uniform_int(0, 31);
    random_diff += std::abs(s.image[y * 32 + x] - s.image[y2 * 32 + x2]);
  }
  EXPECT_LT(adjacent_diff, random_diff * 0.7);
}

TEST(NoiseTest, MomentsMatchConfig) {
  NoiseDataset dataset(1, 5, 1, 32, 0.5f, 0.1f);
  const Sample s = dataset.get(0);
  double total = 0.0;
  for (std::int64_t i = 0; i < s.image.numel(); ++i) total += s.image[i];
  EXPECT_NEAR(total / s.image.numel(), 0.5, 0.02);
}

TEST(NoiseTest, NoSpatialStructure) {
  const Sample s = NoiseDataset(2, 5, 1, 32).get(0);
  // Adjacent and random pixel differences should be comparable for iid noise.
  double adjacent_diff = 0.0;
  double random_diff = 0.0;
  Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    const int y = rng.uniform_int(0, 30);
    const int x = rng.uniform_int(0, 30);
    adjacent_diff += std::abs(s.image[y * 32 + x] - s.image[y * 32 + x + 1]);
    const int y2 = rng.uniform_int(0, 31);
    const int x2 = rng.uniform_int(0, 31);
    random_diff += std::abs(s.image[y * 32 + x] - s.image[y2 * 32 + x2]);
  }
  EXPECT_GT(adjacent_diff, random_diff * 0.8);
}

TEST(NoiseTest, RejectsBadConfig) {
  EXPECT_THROW(NoiseDataset(1, 5, 2, 32), Error);
  EXPECT_THROW(NoiseDataset(1, 5, 1, 0), Error);
}

// ---------- materialize ----------

TEST(MaterializeTest, ParallelMatchesSequential) {
  DigitsDataset dataset(11, 40);
  const auto bulk = materialize(dataset, 40);
  ASSERT_EQ(bulk.images.size(), 40u);
  for (int i = 0; i < 40; i += 7) {
    const Sample s = dataset.get(i);
    EXPECT_EQ(bulk.labels[static_cast<std::size_t>(i)], s.label);
    for (std::int64_t p = 0; p < s.image.numel(); p += 97) {
      EXPECT_EQ(bulk.images[static_cast<std::size_t>(i)][p], s.image[p]);
    }
  }
}

TEST(MaterializeTest, OffsetWindow) {
  DigitsDataset dataset(11, 40);
  const auto window = materialize(dataset, 5, 30);
  ASSERT_EQ(window.images.size(), 5u);
  EXPECT_EQ(window.labels[0], dataset.get(30).label);
  EXPECT_THROW(materialize(dataset, 20, 30), Error);
}

// ---------- render helpers ----------

TEST(RenderTest, SegmentDistance) {
  EXPECT_FLOAT_EQ(segment_distance({0, 1}, {0, 0}, {1, 0}), 1.0f);
  EXPECT_FLOAT_EQ(segment_distance({2, 0}, {0, 0}, {1, 0}), 1.0f);
  EXPECT_FLOAT_EQ(segment_distance({0.5f, 0}, {0, 0}, {1, 0}), 0.0f);
}

TEST(RenderTest, TransformIdentity) {
  const Polyline line{{0.2f, 0.3f}, {0.8f, 0.9f}};
  const Polyline out = transform(line, Jitter{});
  EXPECT_NEAR(out[0].x, 0.2f, 1e-6f);
  EXPECT_NEAR(out[1].y, 0.9f, 1e-6f);
}

TEST(RenderTest, TransformTranslates) {
  const Polyline line{{0.5f, 0.5f}};
  Jitter jitter;
  jitter.dx = 0.1f;
  jitter.dy = -0.2f;
  const Polyline out = transform(line, jitter);
  EXPECT_NEAR(out[0].x, 0.6f, 1e-6f);
  EXPECT_NEAR(out[0].y, 0.3f, 1e-6f);
}

TEST(RenderTest, DrawStrokesMarksInk) {
  std::vector<float> image(16 * 16, 0.0f);
  draw_strokes(image.data(), 16, 16, {{{0.1f, 0.5f}, {0.9f, 0.5f}}}, 0.05f);
  double ink = 0.0;
  for (const float v : image) ink += v;
  EXPECT_GT(ink, 3.0);
  // Far corner stays empty.
  EXPECT_EQ(image[0], 0.0f);
}

TEST(RenderTest, HsvPrimaries) {
  float r, g, b;
  hsv_to_rgb(0.0f, 1.0f, 1.0f, r, g, b);
  EXPECT_NEAR(r, 1.0f, 1e-5f);
  EXPECT_NEAR(g, 0.0f, 1e-5f);
  hsv_to_rgb(1.0f / 3.0f, 1.0f, 1.0f, r, g, b);
  EXPECT_NEAR(g, 1.0f, 1e-5f);
  // Zero saturation = grey.
  hsv_to_rgb(0.7f, 0.0f, 0.42f, r, g, b);
  EXPECT_NEAR(r, 0.42f, 1e-5f);
  EXPECT_NEAR(g, 0.42f, 1e-5f);
  EXPECT_NEAR(b, 0.42f, 1e-5f);
}

TEST(RenderTest, ValueNoiseInRangeAndDeterministic) {
  Rng rng1(9);
  Rng rng2(9);
  const auto a = value_noise(16, 16, 3, rng1);
  const auto b = value_noise(16, 16, 3, rng2);
  EXPECT_EQ(a, b);
  for (const float v : a) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(RenderTest, ArcSamplesEndpoints) {
  const Polyline circle = arc({0.5f, 0.5f}, 0.2f, 0.2f, 0.0f, 6.2831853f, 16);
  EXPECT_EQ(circle.size(), 17u);
  EXPECT_NEAR(circle.front().x, 0.7f, 1e-4f);
  EXPECT_NEAR(circle.front().x, circle.back().x, 1e-4f);
}

}  // namespace
}  // namespace dnnv::data
