// im2col / col2im lowering used by the Conv2d kernels.
#ifndef DNNV_TENSOR_IM2COL_H_
#define DNNV_TENSOR_IM2COL_H_

#include <cstdint>

namespace dnnv {

/// Output spatial size of a convolution/pooling window sweep.
std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel,
                          std::int64_t stride, std::int64_t pad);

/// Unfolds one CHW image into a [channels*kh*kw, out_h*out_w] column matrix
/// (row-major). Out-of-bounds (padding) taps read as 0.
void im2col(const float* image, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* columns);

/// Adjoint of im2col: scatters a column matrix back into a CHW image,
/// accumulating overlapping taps. `image` must be zeroed by the caller when a
/// fresh gradient is wanted.
void col2im(const float* columns, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* image);

}  // namespace dnnv

#endif  // DNNV_TENSOR_IM2COL_H_
