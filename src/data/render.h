// 2-D rasterisation helpers shared by the procedural datasets.
#ifndef DNNV_DATA_RENDER_H_
#define DNNV_DATA_RENDER_H_

#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace dnnv::data {

/// Point in the unit square (x right, y down).
struct Point {
  float x = 0.0f;
  float y = 0.0f;
};

/// Open polyline through `points` (consecutive points are stroke segments).
using Polyline = std::vector<Point>;

/// Affine jitter applied to stroke geometry before rasterisation.
struct Jitter {
  float dx = 0.0f;       ///< translation
  float dy = 0.0f;
  float rotation = 0.0f;  ///< radians, about the glyph centre
  float scale = 1.0f;
  float shear = 0.0f;     ///< x += shear * (y - 0.5)
};

/// Applies `jitter` to every point (rotation/scale about (0.5, 0.5)).
Polyline transform(const Polyline& line, const Jitter& jitter);

/// Distance from point p to segment ab.
float segment_distance(Point p, Point a, Point b);

/// Rasterises anti-aliased strokes into a height*width greyscale buffer
/// (values accumulate and saturate at 1). `thickness` is the stroke
/// half-width in unit coordinates.
void draw_strokes(float* image, int height, int width,
                  const std::vector<Polyline>& strokes, float thickness);

/// Samples a circular arc (angles in radians, y-down coordinates) into a
/// polyline with `segments` pieces.
Polyline arc(Point center, float radius_x, float radius_y, float angle_begin,
             float angle_end, int segments = 24);

/// Adds i.i.d. Gaussian noise (clamped to [0,1]) to a buffer.
void add_noise(float* image, std::int64_t size, float stddev, Rng& rng);

/// HSV (h in [0,1), s,v in [0,1]) to RGB.
void hsv_to_rgb(float h, float s, float v, float& r, float& g, float& b);

/// Multi-octave value noise in [0,1]: coarse random grids bilinearly
/// upsampled and summed with halving amplitude. Deterministic in rng state.
std::vector<float> value_noise(int height, int width, int octaves, Rng& rng);

}  // namespace dnnv::data

#endif  // DNNV_DATA_RENDER_H_
