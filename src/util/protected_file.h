// Shared protected-container file format: keyed keystream obfuscation plus
// a CRC-32 footer under a magic/version header. Used by the test-suite
// package (validate::TestSuite) and the release bundle
// (pipeline::Deliverable) so their encode/verify paths evolve together.
//
// Layout: u32 magic | u32 version | u32 crc32(cipher) | u64 size | cipher.
// The CRC covers the OBFUSCATED payload, so in-transit corruption is
// detected without the key; a wrong key decodes to garbage that the
// caller's payload parser rejects.
#ifndef DNNV_UTIL_PROTECTED_FILE_H_
#define DNNV_UTIL_PROTECTED_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.h"

namespace dnnv {

/// The distinct container-verification failure modes. Carried as a typed
/// field (not just message text) so transport layers — the validation
/// server's wire protocol, a future HTTP front-end — can surface each mode
/// as its own error code instead of one generic "load failed".
enum class ProtectedFileFault {
  kBadMagic,    ///< not a dnnv container of the expected kind
  kBadVersion,  ///< container kind matches but the version is unsupported
  kShortRead,   ///< truncated header or payload
  kBadCrc       ///< payload failed its integrity check (in-transit corruption)
};

/// Stable lowercase token per fault ("bad-magic", "bad-version",
/// "short-read", "bad-crc") for logs and machine-readable reporting.
const char* to_string(ProtectedFileFault fault);

/// Error thrown by read_protected_file: the usual dnnv::Error message plus
/// the typed fault. Catch dnnv::Error to treat all modes alike; catch this
/// to dispatch on fault().
class ProtectedFileError : public Error {
 public:
  ProtectedFileError(ProtectedFileFault fault, const std::string& what)
      : Error(what), fault_(fault) {}

  ProtectedFileFault fault() const { return fault_; }

 private:
  ProtectedFileFault fault_;
};

/// Obfuscates `payload` with `key`, frames it with magic/version/CRC and
/// writes `path`.
void write_protected_file(const std::string& path,
                          std::vector<std::uint8_t> payload, std::uint64_t key,
                          std::uint32_t magic, std::uint32_t version,
                          const char* what);

/// Verifies magic, version, truncation and CRC, then de-obfuscates and
/// returns the plaintext payload. Throws ProtectedFileError naming `what`
/// with a distinct diagnostic (and typed fault) per failure mode: "bad
/// magic" (not our container), "unsupported ... version", "short read"
/// (truncated header or payload) and "bad CRC" (in-transit corruption).
std::vector<std::uint8_t> read_protected_file(const std::string& path,
                                              std::uint64_t key,
                                              std::uint32_t magic,
                                              std::uint32_t version,
                                              const char* what);

}  // namespace dnnv

#endif  // DNNV_UTIL_PROTECTED_FILE_H_
