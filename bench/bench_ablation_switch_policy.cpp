// Ablation — combined-method switch policy: the paper's one-way switch vs
// continuously interleaving Algorithm 1 and Algorithm 2.
#include <iostream>

#include "bench/bench_common.h"
#include "coverage/parameter_coverage.h"
#include "testgen/combined_generator.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dnnv;
  const CliArgs args(argc, argv, {"budget", "pool", "paper-scale", "retrain"});
  const int budget = args.get_int("budget", 50);
  const auto pool_size = static_cast<std::int64_t>(args.get_int("pool", 400));
  bench::banner("bench_ablation_switch_policy",
                "§IV-D switch rule — switch-once vs interleaved");

  const auto options = bench::zoo_options(args);
  auto trained = exp::cifar_relu(options);
  const auto pool = exp::shapes_train(pool_size);
  const auto universe = static_cast<std::size_t>(trained.model.param_count());
  const auto masks =
      cov::activation_masks(trained.model, pool.images, trained.coverage);

  auto run = [&](testgen::SwitchPolicy policy) {
    cov::CoverageAccumulator acc(universe);
    testgen::CombinedGenerator::Options combined_options;
    combined_options.max_tests = budget;
    combined_options.coverage = trained.coverage;
    combined_options.policy = policy;
    combined_options.gradient.coverage = trained.coverage;
    combined_options.gradient.steps = 60;
    return testgen::CombinedGenerator(combined_options)
        .generate(trained.model, pool.images, masks, trained.item_shape,
                  trained.num_classes, acc);
  };

  const auto once = run(testgen::SwitchPolicy::kSwitchOnce);
  const auto interleaved = run(testgen::SwitchPolicy::kInterleaved);

  auto count_synthetic = [](const testgen::GenerationResult& r) {
    int synthetic = 0;
    for (const auto& test : r.tests) {
      if (test.source == testgen::TestSource::kSynthetic) ++synthetic;
    }
    return synthetic;
  };

  TablePrinter table({"#tests", "switch-once (paper)", "interleaved"});
  for (const int n : {10, 20, 30, 40, 50}) {
    if (n > budget) break;
    const auto idx = static_cast<std::size_t>(n) - 1;
    auto value = [&](const testgen::GenerationResult& r) {
      return idx < r.coverage_after.size() ? format_percent(r.coverage_after[idx])
                                           : std::string("-");
    };
    table.add_row({std::to_string(n), value(once), value(interleaved)});
  }
  table.print(std::cout);
  std::cout << "\nsynthetic tests used: switch-once " << count_synthetic(once)
            << "/" << once.tests.size() << ", interleaved "
            << count_synthetic(interleaved) << "/" << interleaved.tests.size()
            << "\nfinal coverage: switch-once "
            << format_percent(once.final_coverage) << " vs interleaved "
            << format_percent(interleaved.final_coverage) << "\n";
  return 0;
}
