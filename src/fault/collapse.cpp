#include "fault/collapse.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/error.h"

namespace dnnv::fault {
namespace {

std::int64_t layer_fanin(const quant::QLayer& q) {
  return q.kind == quant::QLayerKind::kConv2d
             ? q.in_channels * q.kernel * q.kernel
             : q.in_features;
}

/// The output channel a code/acc fault feeds.
std::int64_t fault_channel(const quant::QLayer& q, const Fault& f) {
  if (!is_code_fault(f.kind) || f.is_bias) return f.unit;
  return f.unit / layer_fanin(q);
}

/// FNV-1a over the row words — identical rows collide on purpose.
std::size_t row_hash(const DynamicBitset& row) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint64_t w : row.words()) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace

FaultUniverse collapse_structural(const FaultUniverse& universe,
                                  const quant::QuantModel& model,
                                  CollapseStats* stats) {
  CollapseStats local;
  local.input = universe.size();
  FaultUniverse kept;
  // Structural-equivalence key of a code fault: (layer, tensor, unit,
  // resulting code) — two faults mapping the same unit to the same code are
  // indistinguishable by ANY test.
  std::unordered_set<std::uint64_t> seen_codes;
  std::unordered_set<std::uint64_t> seen_ids;
  for (const Fault& f : universe.faults()) {
    const quant::QLayer& q = model.layers()[f.layer];
    // Dead channel: a requant multiplier of 0 forces that channel's output
    // to 0 whatever the accumulator holds, so weight/bias/acc faults
    // confined to it are undetectable by construction.
    if (!q.dequant_output && f.kind != FaultKind::kRequantMult) {
      const std::int64_t channel = fault_channel(q, f);
      if (model.requant_multiplier(f.layer, channel) == 0) {
        ++local.dropped_dead;
        continue;
      }
    }
    if (is_code_fault(f.kind)) {
      const std::int8_t prev = model.code_at(f.layer, f.is_bias != 0, f.unit);
      const std::int8_t next = faulted_code(prev, f);
      if (next == prev) {
        ++local.dropped_noop;
        continue;
      }
      const std::uint64_t key =
          (static_cast<std::uint64_t>(f.layer) << 50) |
          (static_cast<std::uint64_t>(f.is_bias & 1) << 49) |
          (static_cast<std::uint64_t>(static_cast<std::uint8_t>(next)) << 40) |
          (static_cast<std::uint64_t>(f.unit) & 0xFFFFFFFFFFull);
      if (!seen_codes.insert(key).second) {
        ++local.dropped_equivalent;
        continue;
      }
    } else if (!seen_ids.insert(f.id()).second) {
      ++local.dropped_equivalent;
      continue;
    }
    kept.add(f);
  }
  local.kept = kept.size();
  if (stats) *stats = local;
  return kept;
}

MatrixCollapse analyze_matrix(const std::vector<DynamicBitset>& rows) {
  MatrixCollapse mc;
  mc.representative.resize(rows.size());
  // Equivalence: identical detection rows → one class, represented by the
  // lowest fault index. Hash buckets hold candidate indices; exact row
  // comparison resolves collisions.
  std::unordered_map<std::size_t, std::vector<std::size_t>> buckets;
  std::vector<std::size_t> reps;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    auto& bucket = buckets[row_hash(rows[i])];
    std::size_t rep = i;
    for (const std::size_t j : bucket) {
      if (rows[j] == rows[i]) {
        rep = j;
        break;
      }
    }
    if (rep == i) bucket.push_back(i);
    mc.representative[i] = rep;
    if (rep == i) {
      if (rows[i].none()) {
        mc.undetected.push_back(i);
      } else {
        reps.push_back(i);
      }
    } else if (rows[rep].none()) {
      mc.undetected.push_back(i);
    }
  }
  mc.num_classes = reps.size();

  // Dominance: rep i is removable when some rep j's row is a strict subset
  // of i's — any test detecting j also detects i. Sweep by ascending
  // popcount so candidates only need checking against already-kept smaller
  // rows; equal-popcount rows are distinct (different classes) and cannot
  // be subsets of each other.
  std::vector<std::size_t> order = reps;
  std::sort(order.begin(), order.end(), [&rows](std::size_t a, std::size_t b) {
    const std::size_t ca = rows[a].count(), cb = rows[b].count();
    return ca != cb ? ca < cb : a < b;
  });
  std::vector<std::size_t> core;
  for (const std::size_t i : order) {
    const std::size_t ci = rows[i].count();
    bool dominated = false;
    for (const std::size_t j : core) {
      const std::size_t cj = rows[j].count();
      if (cj >= ci) break;  // core is popcount-ascending
      if (rows[j].count_common_bits(rows[i]) == cj) {
        dominated = true;
        break;
      }
    }
    if (!dominated) core.push_back(i);
  }
  std::sort(core.begin(), core.end());
  mc.core = std::move(core);
  return mc;
}

}  // namespace dnnv::fault
