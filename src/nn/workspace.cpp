#include "nn/workspace.h"

namespace dnnv::nn {

Tensor& Workspace::buffer(std::size_t layer_index, int slot,
                          const Shape& shape) {
  Tensor& t = buffers_[key(layer_index, slot)];
  if (t.shape() != shape) t.resize(shape);
  return t;
}

Tensor& Workspace::zeroed(std::size_t layer_index, int slot,
                          const Shape& shape) {
  Tensor& t = buffer(layer_index, slot, shape);
  t.fill(0.0f);
  return t;
}

std::vector<std::int8_t>& Workspace::i8_buffer(std::size_t layer_index,
                                               int slot, std::size_t size) {
  std::vector<std::int8_t>& buf = i8_buffers_[key(layer_index, slot)];
  buf.resize(size);
  return buf;
}

std::vector<std::int32_t>& Workspace::i32_buffer(std::size_t layer_index,
                                                 int slot, std::size_t size) {
  std::vector<std::int32_t>& buf = i32_buffers_[key(layer_index, slot)];
  buf.resize(size);
  return buf;
}

}  // namespace dnnv::nn
