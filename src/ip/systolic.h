// Systolic-array timing model for the DNN accelerator IP.
//
// DNN IPs are usually weight-stationary systolic engines (TPU-style). This
// module estimates the cycle cost of running a Sequential model on an
// R x C MAC array with given memory bandwidth — the numbers an IP vendor
// quotes on a datasheet and the cost model a user needs to budget
// functional-test replay time. Purely analytical (no per-cycle simulation):
// each layer is lowered to the GEMM the accelerator would run and tiled over
// the array.
#ifndef DNNV_IP_SYSTOLIC_H_
#define DNNV_IP_SYSTOLIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/sequential.h"

namespace dnnv::ip {

/// Accelerator geometry and speeds.
struct SystolicConfig {
  int rows = 16;                   ///< MAC array rows (input-channel axis)
  int cols = 16;                   ///< MAC array columns (output axis)
  double frequency_mhz = 800.0;    ///< core clock
  /// Off-chip weight-memory bandwidth in bytes/cycle (int8 weights).
  double memory_bytes_per_cycle = 16.0;
  /// Cycles to drain/refill the pipeline per tile (skew + control).
  int tile_overhead_cycles = 32;
};

/// Cost of one layer on the array.
struct LayerCost {
  std::string name;            ///< layer instance name
  std::int64_t macs = 0;       ///< multiply-accumulates in the lowered GEMM
  std::int64_t weight_bytes = 0;
  std::int64_t compute_cycles = 0;  ///< array-bound cycles (tiled)
  std::int64_t memory_cycles = 0;   ///< weight-streaming cycles
  std::int64_t cycles = 0;          ///< max(compute, memory) + overheads

  bool memory_bound() const { return memory_cycles > compute_cycles; }
};

/// Whole-model cost report.
struct ModelCost {
  std::vector<LayerCost> layers;
  std::int64_t total_cycles = 0;
  double total_macs = 0;

  /// Latency for one inference at the configured clock.
  double latency_us(const SystolicConfig& config) const {
    return static_cast<double>(total_cycles) / config.frequency_mhz;
  }

  /// Achieved MAC utilisation vs the array peak over the busy cycles.
  double utilization(const SystolicConfig& config) const {
    const double peak =
        static_cast<double>(config.rows) * config.cols *
        static_cast<double>(total_cycles);
    return peak > 0 ? total_macs / peak : 0.0;
  }
};

/// Estimates per-layer and total cycles for one inference (batch 1) of
/// `model` on the array. `item_shape` is the CHW input shape. Layers without
/// MACs (pool/flatten/activation/normalize) contribute element-op cycles at
/// one lane-row per cycle.
ModelCost estimate_cost(const nn::Sequential& model, const Shape& item_shape,
                        const SystolicConfig& config = SystolicConfig());

/// Cycle cost of replaying a functional-test suite of `num_tests` inputs
/// (weights stay resident after the first test — the dominant reuse effect).
std::int64_t suite_replay_cycles(const ModelCost& cost,
                                 const SystolicConfig& config, int num_tests);

}  // namespace dnnv::ip

#endif  // DNNV_IP_SYSTOLIC_H_
