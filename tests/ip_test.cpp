// IP substrate tests: black-box semantics, quantisation fidelity, and the
// memory-level fault injector.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ip/fault_injector.h"
#include "ip/quantized_ip.h"
#include "ip/reference_ip.h"
#include "nn/builder.h"
#include "nn/trainer.h"
#include "util/error.h"

namespace dnnv::ip {
namespace {

using nn::ActivationKind;
using nn::Sequential;

Sequential trained_net(std::uint64_t seed = 5) {
  Rng rng(seed);
  Sequential model = nn::build_mlp(6, {10}, 3, ActivationKind::kReLU, rng);
  Rng data_rng(seed + 1);
  std::vector<Tensor> inputs;
  std::vector<int> labels;
  for (int i = 0; i < 120; ++i) {
    const int label = i % 3;
    Tensor x(Shape{6});
    for (std::int64_t j = 0; j < 6; ++j) {
      x[j] = static_cast<float>(data_rng.normal(j == label * 2 ? 1.0 : 0.0, 0.3));
    }
    inputs.push_back(std::move(x));
    labels.push_back(label);
  }
  nn::TrainConfig config;
  config.epochs = 10;
  config.batch_size = 16;
  nn::fit(model, inputs, labels, config);
  return model;
}

std::vector<Tensor> probe_inputs(int count, std::uint64_t seed = 3) {
  Rng rng(seed);
  std::vector<Tensor> inputs;
  for (int i = 0; i < count; ++i) {
    inputs.push_back(Tensor::rand_uniform(Shape{6}, rng, -1.0f, 1.0f));
  }
  return inputs;
}

// ---------- ReferenceIp ----------

TEST(ReferenceIpTest, MatchesUnderlyingModel) {
  Sequential model = trained_net();
  ReferenceIp ip(model, Shape{6});
  EXPECT_EQ(ip.num_classes(), 3);
  EXPECT_EQ(ip.input_shape(), Shape({6}));
  for (const auto& x : probe_inputs(10)) {
    EXPECT_EQ(ip.predict(x), model.predict_label(x));
  }
}

TEST(ReferenceIpTest, BatchMatchesSingle) {
  Sequential model = trained_net();
  ReferenceIp ip(model, Shape{6});
  const auto inputs = probe_inputs(7);
  const auto batch = ip.predict_all(inputs);
  ASSERT_EQ(batch.size(), 7u);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(batch[i], ip.predict(inputs[i]));
  }
}

TEST(ReferenceIpTest, IsIsolatedFromVendorModel) {
  Sequential model = trained_net();
  ReferenceIp ip(model, Shape{6});
  const auto x = probe_inputs(1).front();
  const int before = ip.predict(x);
  // Corrupting the vendor's model object must not affect the shipped IP.
  for (const auto& view : model.param_views()) {
    for (std::int64_t i = 0; i < view.size; ++i) view.data[i] = 0.0f;
  }
  EXPECT_EQ(ip.predict(x), before);
}

TEST(ReferenceIpTest, RejectsWrongInputShape) {
  Sequential model = trained_net();
  ReferenceIp ip(model, Shape{6});
  EXPECT_THROW(ip.predict(Tensor(Shape{5})), Error);
}

// ---------- QuantizedIp ----------

TEST(QuantizedIpTest, MemoryLayoutCoversAllParams) {
  Sequential model = trained_net();
  const auto params = model.param_count();
  QuantizedIp ip(model, Shape{6});
  EXPECT_EQ(ip.memory_size(), static_cast<std::size_t>(params));
  std::int64_t table_total = 0;
  for (const auto& info : ip.tensor_table()) table_total += info.size;
  EXPECT_EQ(table_total, params);
}

TEST(QuantizedIpTest, QuantizationErrorWithinBound) {
  Sequential model = trained_net();
  QuantizedIp ip(model, Shape{6});
  EXPECT_LE(ip.max_quantization_error(), ip.quantization_error_bound() + 1e-6f);
  EXPECT_GT(ip.quantization_error_bound(), 0.0f);
}

TEST(QuantizedIpTest, AgreesWithFloatModelOnMostInputs) {
  Sequential model = trained_net();
  QuantizedIp quant(model, Shape{6});
  ReferenceIp ref(model, Shape{6});
  const auto inputs = probe_inputs(50);
  int agree = 0;
  for (const auto& x : inputs) {
    if (quant.predict(x) == ref.predict(x)) ++agree;
  }
  // Int8 weight quantisation shifts decisions only near boundaries.
  EXPECT_GE(agree, 45);
}

TEST(QuantizedIpTest, PerChannelErrorBoundSemantics) {
  // The error accounting must dequantize every code with ITS channel's
  // scale: per-channel grids are finer, so the per-channel bound can never
  // exceed the per-tensor bound, and measured error obeys each bound.
  Sequential model = trained_net();
  const auto pool = probe_inputs(32, 21);
  QuantizedIp per_channel(model, Shape{6}, pool);  // per-channel default
  quant::QuantConfig per_tensor_config;
  per_tensor_config.weight_granularity = quant::Granularity::kPerTensor;
  QuantizedIp per_tensor(model, Shape{6}, pool, per_tensor_config);

  EXPECT_LE(per_channel.max_quantization_error(),
            per_channel.quantization_error_bound() + 1e-6f);
  EXPECT_LE(per_tensor.max_quantization_error(),
            per_tensor.quantization_error_bound() + 1e-6f);
  EXPECT_LE(per_channel.quantization_error_bound(),
            per_tensor.quantization_error_bound() + 1e-6f);
  EXPECT_LE(per_channel.max_quantization_error(),
            per_tensor.quantization_error_bound() + 1e-6f);

  // The address-layout table documents the channel structure: the first
  // weight tensor (dense 6->10) carries one scale per output unit.
  const auto& first = per_channel.tensor_table().front();
  EXPECT_EQ(first.channel_scales.size(), 10u);
  EXPECT_EQ(first.per_channel, 6);
  EXPECT_EQ(first.scale, *std::max_element(first.channel_scales.begin(),
                                           first.channel_scales.end()));
  EXPECT_EQ(per_tensor.tensor_table().front().channel_scales.size(), 1u);
}

TEST(QuantizedIpTest, BitFlipChangesMemoryAndCanChangeOutput) {
  Sequential model = trained_net();
  QuantizedIp ip(model, Shape{6});
  const std::uint8_t before = ip.read_byte(0);
  ip.flip_bit(0, 7);  // sign bit of the first weight
  EXPECT_NE(ip.read_byte(0), before);
  ip.flip_bit(0, 7);
  EXPECT_EQ(ip.read_byte(0), before);
}

TEST(QuantizedIpTest, MemoryWriteAffectsInference) {
  Sequential model = trained_net();
  QuantizedIp ip(model, Shape{6});
  const auto inputs = probe_inputs(30, 9);
  const auto clean = ip.predict_all(inputs);

  // Corrupt a large slab of weight memory: predictions must change somewhere.
  for (std::size_t a = 0; a < ip.memory_size() / 2; ++a) {
    ip.write_byte(a, static_cast<std::uint8_t>(0x7F));
  }
  const auto corrupted = ip.predict_all(inputs);
  int changed = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (clean[i] != corrupted[i]) ++changed;
  }
  EXPECT_GT(changed, 0);
}

TEST(QuantizedIpTest, AddressValidation) {
  Sequential model = trained_net();
  QuantizedIp ip(model, Shape{6});
  EXPECT_THROW(ip.read_byte(ip.memory_size()), Error);
  EXPECT_THROW(ip.flip_bit(0, 8), Error);
  EXPECT_THROW(ip.write_byte(ip.memory_size(), 0), Error);
}

// ---------- FaultInjector ----------

TEST(FaultInjectorTest, BitFlipRevertRestoresMemory) {
  Sequential model = trained_net();
  QuantizedIp ip(model, Shape{6});
  FaultInjector injector(ip);
  std::vector<std::uint8_t> snapshot;
  for (std::size_t a = 0; a < ip.memory_size(); ++a) {
    snapshot.push_back(ip.read_byte(a));
  }
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    const MemoryFault fault = injector.inject_random_bit_flip(rng);
    EXPECT_NE(ip.read_byte(fault.address), fault.previous);
    injector.revert(fault);
  }
  for (std::size_t a = 0; a < ip.memory_size(); ++a) {
    EXPECT_EQ(ip.read_byte(a), snapshot[a]);
  }
}

TEST(FaultInjectorTest, StuckAtSemantics) {
  Sequential model = trained_net();
  QuantizedIp ip(model, Shape{6});
  FaultInjector injector(ip);
  injector.inject_byte_write(5, 0x00);
  const MemoryFault s1 = injector.inject_stuck_at(5, 3, true);
  EXPECT_EQ(ip.read_byte(5), 0x08);
  injector.revert(s1);
  injector.inject_byte_write(5, 0xFF);
  injector.inject_stuck_at(5, 0, false);
  EXPECT_EQ(ip.read_byte(5), 0xFE);
}

TEST(FaultInjectorTest, CampaignRevertsOverlappingFaultsInReverse) {
  Sequential model = trained_net();
  QuantizedIp ip(model, Shape{6});
  FaultInjector injector(ip);
  std::vector<std::uint8_t> snapshot;
  for (std::size_t a = 0; a < ip.memory_size(); ++a) {
    snapshot.push_back(ip.read_byte(a));
  }

  // Three faults pile onto byte 5 (byte-write, then stuck-at / flip on the
  // faulted value) plus one elsewhere. Each record's `previous` is the byte
  // AFTER the earlier faults, so only the reverse revert restores memory.
  const auto written = static_cast<std::uint8_t>(~snapshot[5]);
  std::vector<MemoryFault> campaign(4);
  campaign[0].kind = MemoryFault::Kind::kByteWrite;
  campaign[0].address = 5;
  campaign[0].value = written;
  campaign[1].kind = MemoryFault::Kind::kStuckAt1;
  campaign[1].address = 5;
  campaign[1].bit = 1;
  campaign[2].kind = MemoryFault::Kind::kBitFlip;
  campaign[2].address = 5;
  campaign[2].bit = 7;
  campaign[3].kind = MemoryFault::Kind::kStuckAt0;
  campaign[3].address = 0;
  campaign[3].bit = 7;

  const std::vector<MemoryFault> injected = injector.inject_all(campaign);
  ASSERT_EQ(injected.size(), 4u);
  EXPECT_EQ(injected[0].previous, snapshot[5]);
  EXPECT_EQ(injected[1].previous, written);
  EXPECT_EQ(injected[2].previous,
            static_cast<std::uint8_t>(written | 0x02));
  EXPECT_EQ(ip.read_byte(5),
            static_cast<std::uint8_t>((written | 0x02) ^ 0x80));

  injector.revert_all(injected);
  for (std::size_t a = 0; a < ip.memory_size(); ++a) {
    EXPECT_EQ(ip.read_byte(a), snapshot[a]);
  }

  // Forward-order revert leaves the intermediate state behind on byte 5 —
  // the reason revert_all walks the records back to front.
  const std::vector<MemoryFault> again = injector.inject_all(campaign);
  for (const MemoryFault& fault : again) injector.revert(fault);
  EXPECT_NE(ip.read_byte(5), snapshot[5]);
  ip.write_byte(5, snapshot[5]);
  for (std::size_t a = 0; a < ip.memory_size(); ++a) {
    EXPECT_EQ(ip.read_byte(a), snapshot[a]);
  }
}

TEST(FaultInjectorTest, SignBitFlipIsLargePerturbation) {
  // Flipping bit 7 of a two's complement int8 moves the weight by 128 quanta
  // — the most damaging single-bit fault, mirroring published bit-flip
  // attack findings.
  Sequential model = trained_net();
  QuantizedIp ip(model, Shape{6});
  const float scale = ip.tensor_table()[0].scale;
  const auto before = static_cast<std::int8_t>(ip.read_byte(0));
  FaultInjector injector(ip);
  injector.inject_bit_flip(0, 7);
  const auto after = static_cast<std::int8_t>(ip.read_byte(0));
  EXPECT_NEAR(std::fabs(static_cast<float>(after) - before) * scale,
              128.0f * scale, 1e-6f);
}

}  // namespace
}  // namespace dnnv::ip
