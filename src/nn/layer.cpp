#include "nn/layer.h"

#include "nn/workspace.h"
#include "util/error.h"

namespace dnnv::nn {

void Layer::forward_into(std::size_t, const Tensor& input, Tensor& output,
                         Workspace&) {
  output = forward(input);
}

void Layer::backward_into(std::size_t, const Tensor& grad_output,
                          Tensor& grad_input, Workspace&) {
  grad_input = backward(grad_output);
}

void Layer::sensitivity_backward_into(std::size_t, const Tensor& sens_output,
                                      Tensor& sens_input, Workspace&) {
  sens_input = sensitivity_backward(sens_output);
}

void Layer::sensitivity_backward_item(std::size_t, std::int64_t, const Tensor&,
                                      Tensor&, Workspace&) {
  DNNV_THROW("layer '" << kind()
                       << "' does not implement the per-item batched "
                          "sensitivity pass");
}

std::int64_t Layer::param_count() const {
  // param_views() hands out mutable buffer pointers, so it is non-const;
  // counting their sizes is logically const.
  std::int64_t total = 0;
  for (const auto& view : const_cast<Layer*>(this)->param_views()) {
    total += view.size;
  }
  return total;
}

void Layer::zero_grads() {
  for (auto& view : param_views()) {
    for (std::int64_t i = 0; i < view.size; ++i) view.grad[i] = 0.0f;
  }
}

}  // namespace dnnv::nn
