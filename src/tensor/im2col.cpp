#include "tensor/im2col.h"

#include "util/error.h"

namespace dnnv {

std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel,
                          std::int64_t stride, std::int64_t pad) {
  DNNV_CHECK(stride > 0, "stride must be positive");
  const std::int64_t eff = in + 2 * pad - kernel;
  DNNV_CHECK(eff >= 0, "kernel " << kernel << " larger than padded input "
                                 << in + 2 * pad);
  return eff / stride + 1;
}

void im2col(const float* image, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* columns) {
  const std::int64_t out_h = conv_out_dim(height, kh, stride, pad);
  const std::int64_t out_w = conv_out_dim(width, kw, stride, pad);
  const std::int64_t out_plane = out_h * out_w;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < channels; ++c) {
    const float* plane = image + c * height * width;
    for (std::int64_t ky = 0; ky < kh; ++ky) {
      for (std::int64_t kx = 0; kx < kw; ++kx, ++row) {
        float* out_row = columns + row * out_plane;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * stride - pad + ky;
          if (iy < 0 || iy >= height) {
            for (std::int64_t ox = 0; ox < out_w; ++ox) out_row[oy * out_w + ox] = 0.0f;
            continue;
          }
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * stride - pad + kx;
            out_row[oy * out_w + ox] =
                (ix < 0 || ix >= width) ? 0.0f : plane[iy * width + ix];
          }
        }
      }
    }
  }
}

void col2im(const float* columns, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* image) {
  const std::int64_t out_h = conv_out_dim(height, kh, stride, pad);
  const std::int64_t out_w = conv_out_dim(width, kw, stride, pad);
  const std::int64_t out_plane = out_h * out_w;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < channels; ++c) {
    float* plane = image + c * height * width;
    for (std::int64_t ky = 0; ky < kh; ++ky) {
      for (std::int64_t kx = 0; kx < kw; ++kx, ++row) {
        const float* in_row = columns + row * out_plane;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * stride - pad + ky;
          if (iy < 0 || iy >= height) continue;
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * stride - pad + kx;
            if (ix < 0 || ix >= width) continue;
            plane[iy * width + ix] += in_row[oy * out_w + ox];
          }
        }
      }
    }
  }
}

}  // namespace dnnv
