// Coverage explorer — inspect WHERE coverage comes from: per-tensor
// activation fractions for single images from different pools, and how the
// union grows as tests accumulate.
//
// Usage: ./build/examples/coverage_explorer [--model mnist|cifar]
#include <iostream>

#include "coverage/accumulator.h"
#include "coverage/parameter_coverage.h"
#include "coverage/report.h"
#include "exp/model_zoo.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dnnv;
  const CliArgs args(argc, argv, {"model"});
  const std::string which = args.get_string("model", "cifar");

  exp::ZooOptions options;
  options.verbose = true;
  auto trained =
      which == "mnist" ? exp::mnist_tanh(options) : exp::cifar_relu(options);
  std::cout << "=== coverage explorer: " << trained.name << " ===\n";
  std::cout << trained.model.summary() << "\n\n";

  const auto train = which == "mnist" ? exp::digits_train(10) : exp::shapes_train(10);
  const auto noise = exp::noise_pool(trained, 10);

  cov::ParameterCoverage coverage(trained.model, trained.coverage);

  // Per-tensor view of one training image vs one noise image.
  const auto train_mask = coverage.activation_mask(train.images.front());
  const auto noise_mask = coverage.activation_mask(noise.images.front());
  TablePrinter per_tensor({"parameter tensor", "train image", "noise image"});
  const auto train_report = cov::per_layer_coverage(trained.model, train_mask);
  const auto noise_report = cov::per_layer_coverage(trained.model, noise_mask);
  for (std::size_t i = 0; i < train_report.size(); ++i) {
    per_tensor.add_row({train_report[i].name,
                        format_percent(train_report[i].fraction()),
                        format_percent(noise_report[i].fraction())});
  }
  std::cout << "single-image activation by tensor:\n";
  per_tensor.print(std::cout);

  // Union growth: how much NEW coverage each extra training image brings.
  std::cout << "\nunion growth over 10 training images:\n";
  cov::CoverageAccumulator acc(
      static_cast<std::size_t>(trained.model.param_count()));
  TablePrinter growth({"after image", "VC(X)", "new params added"});
  for (std::size_t i = 0; i < train.images.size(); ++i) {
    const auto mask = coverage.activation_mask(train.images[i]);
    const std::size_t gain = acc.marginal_gain(mask);
    acc.add(mask);
    growth.add_row({std::to_string(i + 1), format_percent(acc.coverage()),
                    std::to_string(gain)});
  }
  growth.print(std::cout);
  std::cout << "\nthe shrinking marginal gains are why Algorithm 1 saturates "
               "and the paper switches to gradient-based synthesis.\n";
  return 0;
}
