// Relational affine-form (zonotope) range analysis over the QuantModel IR.
//
// The interval pass (analyze_ranges) treats every tap of a qconv/qgemm
// fan-in as independent, so accumulator hulls are sum-of-independent-taps
// wide. This pass carries CORRELATION: every quantize-layer output neuron
// gets a noise symbol, and each downstream neuron's value is tracked as an
// uncentered affine form over those symbols
//
//   v = (bias + sum_k coef[k] * x_k + e) / 2^kAffineFracBits,
//   x_k in [sym_lo[k], sym_hi[k]],  |e| <= slack / 2^kAffineFracBits,
//
// with the engine's exact integer semantics: forms are EXACT through the
// linear qconv/qgemm accumulation and the bias add (fixed-point int64
// coefficients, __int128 intermediates, every rounding folded into slack),
// and are linearized through the non-linear Q31 requant and LUT steps with
// an exactly-computed error band (monotone segment walk for requant, full
// code enumeration for the LUT). MaxPool keeps the dominant window form and
// widens by the exact worst-case gap to the other windows, so relational
// content survives pooling. Sign cancellation across a layer-2 fan-in —
// sum_i |sum_j w2_j lam_j w1_ji| instead of sum_j |w2_j| lam_j sum_i |w1_ji|
// — is where the tightening comes from.
//
// Soundness: every form is pointwise correct at the real symbol values of
// any input, so its concretization encloses the reachable set; every
// exported hull is additionally MET (intersected) with the interval pass's
// hull over the same options. The result is therefore NEVER wider than
// analyze_ranges — the enclosure the tests assert — and the overflow flag
// can only be cleared (the affine raw-sum hull proving the wrap impossible),
// never set where the interval pass proved absence.
#ifndef DNNV_ANALYSIS_AFFINE_DOMAIN_H_
#define DNNV_ANALYSIS_AFFINE_DOMAIN_H_

#include "analysis/range_analysis.h"

namespace dnnv::analysis {

/// Fixed-point fraction bits of affine-form coefficients/bias/slack.
inline constexpr int kAffineFracBits = 20;

/// Runs the affine pass over `model` under `options` (same input-domain
/// semantics as analyze_ranges). Deterministic; pure integer arithmetic.
/// Degrades to the interval result (sound, just not tighter) when the
/// model's form storage would exceed an internal memory ceiling — tiny/
/// default zoo scales run fully relational.
ModelRange analyze_ranges_affine(const quant::QuantModel& model,
                                 const RangeOptions& options = {});

/// Domain dispatch: analyze_ranges (kInterval) or analyze_ranges_affine
/// (kAffine).
ModelRange analyze_ranges_with(RangeDomain domain,
                               const quant::QuantModel& model,
                               const RangeOptions& options = {});

}  // namespace dnnv::analysis

#endif  // DNNV_ANALYSIS_AFFINE_DOMAIN_H_
