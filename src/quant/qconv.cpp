#include "quant/qconv.h"

#include <algorithm>
#include <atomic>

#include "quant/qgemm_panels.h"
#include "quant/qops.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace dnnv::quant {
namespace {

using namespace detail;

std::atomic<QConvPath> g_conv_path{QConvPath::kFused};

// Same threshold as the qgemm driver: tile parallelism only past ~1M MACs.
constexpr std::int64_t kParallelMinWork = std::int64_t{1} << 20;

template <bool Vnni>
void qconv_fused_impl(const QConvShape& s, const PackedConvWeights& w,
                      const std::int8_t* image, std::int32_t* acc,
                      const QConvScratch& scratch,
                      const QGemmOptions& options) {
  const std::int64_t m = s.out_channels;
  const std::int64_t n = s.plane();
  const std::int64_t k = s.fanin();
  const std::int64_t kk = s.kernel * s.kernel;
  const std::int64_t plane_in = s.height * s.width;
  const std::int64_t out_w = s.out_w();

  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::shared();
  const std::int64_t num_ic = (m + kMC - 1) / kMC;
  const std::int64_t num_jc = (n + kNC - 1) / kNC;
  const std::int64_t num_tiles = num_ic * num_jc;
  const bool parallel = !options.force_serial && pool.num_threads() > 1 &&
                        num_tiles > 1 && m * n * k >= kParallelMinWork;

  for (std::int64_t pc = 0; pc < k; pc += kKC) {
    const std::int64_t kc = std::min(kKC, k - pc);
    const std::int64_t kc4 = quads(kc);
    // B panels straight from the image: generate im2col rows (channel, ky,
    // kx) into rowbuf and pack them into the panel layout — the column
    // matrix of the two-pass path never exists. VNNI packs a K-quad at a
    // time (four rows per vectorized interleave, colsum via vpdpbusd);
    // scalar panels are plain row copies, so the per-row packer suffices.
    auto gen_row = [&](std::int64_t p, std::int8_t* out) {
      const std::int64_t r = pc + p;
      const std::int64_t c = r / kk;
      const std::int64_t rem = r % kk;
      im2col_row_s8(image + c * plane_in, s.height, s.width, out_w, s.stride,
                    s.pad, rem / s.kernel, rem % s.kernel, 0, n, out);
    };
#if DNNV_QGEMM_VNNI
    if constexpr (Vnni) {
      pack_b_quads(kc, n, gen_row, scratch.b_pack, scratch.colsum,
                   scratch.rowbuf);
    } else
#endif
    {
      pack_b_rows<Vnni>(
          kc, n,
          [&](std::int64_t p) {
            gen_row(p, scratch.rowbuf);
            return static_cast<const std::int8_t*>(scratch.rowbuf);
          },
          scratch.b_pack, scratch.colsum);
    }

    const std::uint8_t* a_slice =
        w.panels.data() + static_cast<std::size_t>(pc / kKC) * w.slice_stride;
    auto tile = [&](std::size_t ti) {
      const std::int64_t ic = (static_cast<std::int64_t>(ti) / num_jc) * kMC;
      const std::int64_t jc = (static_cast<std::int64_t>(ti) % num_jc) * kNC;
      const std::int64_t mc = std::min(kMC, m - ic);
      const std::int64_t nc = std::min(kNC, n - jc);
      const std::int32_t* colsum = nullptr;
      if constexpr (Vnni) colsum = scratch.colsum + jc;
      macro_block<Vnni>(mc, nc, kc, a_slice + (ic / kMR) * kc4 * kMR * 4,
                        scratch.b_pack + (jc / kNR) * kc4 * kNR * 4, colsum,
                        acc + ic * n + jc, n);
    };
    if (parallel) {
      pool.parallel_for(static_cast<std::size_t>(num_tiles), tile);
    } else {
      for (std::int64_t ti = 0; ti < num_tiles; ++ti) {
        tile(static_cast<std::size_t>(ti));
      }
    }
  }
}

}  // namespace

PackedConvWeights pack_conv_weights(std::int64_t out_channels,
                                    std::int64_t fanin,
                                    const std::int8_t* weights) {
  PackedConvWeights p;
  p.kernel = qgemm_kernel();
  p.out_channels = out_channels;
  p.fanin = fanin;
  p.slice_stride = packed_a_slice_bytes(out_channels, kKC);
  std::size_t total = 0;
  for (std::int64_t pc = 0; pc < fanin; pc += kKC) {
    total += packed_a_slice_bytes(out_channels, std::min(kKC, fanin - pc));
  }
  p.panels.resize(total);
  std::size_t off = 0;
  for (std::int64_t pc = 0; pc < fanin; pc += kKC) {
    const std::int64_t kc = std::min(kKC, fanin - pc);
#if DNNV_QGEMM_VNNI
    if (p.kernel == QGemmKernel::kVnni) {
      pack_a<true>(weights, fanin, 0, pc, out_channels, kc, p.panels.data() + off);
    } else
#endif
    {
      pack_a<false>(weights, fanin, 0, pc, out_channels, kc,
                    p.panels.data() + off);
    }
    off += packed_a_slice_bytes(out_channels, kc);
  }
  return p;
}

QConvScratchSizes qconv_scratch_sizes(const QConvShape& shape) {
  const std::int64_t n = shape.plane();
  const std::int64_t kc_max = std::min(shape.fanin(), kKC);
  QConvScratchSizes sizes;
  sizes.b_pack = packed_b_slice_bytes(n, kc_max);
  sizes.colsum = static_cast<std::size_t>((n + kNR - 1) / kNR * kNR);
  sizes.rowbuf = static_cast<std::size_t>(4 * n);  // one K-quad of rows
  return sizes;
}

void qconv2d_fused(const QConvShape& shape, const PackedConvWeights& weights,
                   const std::int8_t* image, std::int32_t* acc,
                   const QConvScratch& scratch, const QGemmOptions& options) {
  DNNV_CHECK(weights.matches(shape),
             "packed conv weights do not match shape/kernel (packed for "
             << (weights.kernel == QGemmKernel::kVnni ? "vnni" : "scalar")
             << ", active " << qgemm_kernel_name() << ")");
  DNNV_CHECK(shape.fanin() <= 65536,
             "qconv K " << shape.fanin() << " exceeds the int32 overflow bound");
  DNNV_CHECK(scratch.b_pack && scratch.rowbuf &&
                 (scratch.colsum || qgemm_kernel() != QGemmKernel::kVnni),
             "qconv2d_fused called without arena scratch");
  const std::int64_t m = shape.out_channels;
  const std::int64_t n = shape.plane();
  std::fill(acc, acc + m * n, 0);
  if (m == 0 || n == 0 || shape.fanin() == 0) return;
#if DNNV_QGEMM_VNNI
  if (qgemm_kernel() == QGemmKernel::kVnni) {
    qconv_fused_impl<true>(shape, weights, image, acc, scratch, options);
    return;
  }
#endif
  qconv_fused_impl<false>(shape, weights, image, acc, scratch, options);
}

void set_qconv_path(QConvPath path) {
  g_conv_path.store(path, std::memory_order_relaxed);
}

QConvPath qconv_path() {
  return g_conv_path.load(std::memory_order_relaxed);
}

const char* qconv_path_name() {
  return qconv_path() == QConvPath::kFused ? "fused" : "two-pass";
}

}  // namespace dnnv::quant
