// Functional-test value types shared by all generators.
#ifndef DNNV_TESTGEN_FUNCTIONAL_TEST_H_
#define DNNV_TESTGEN_FUNCTIONAL_TEST_H_

#include <vector>

#include "tensor/tensor.h"

namespace dnnv::testgen {

/// Where a functional test came from.
enum class TestSource {
  kTrainingSample,  ///< selected from the training pool (Algorithm 1)
  kSynthetic,       ///< synthesised by gradient descent (Algorithm 2)
  kRandom,          ///< random-control selection
};

/// One functional test: an input image the vendor will ship with its golden
/// output.
struct FunctionalTest {
  Tensor input;
  TestSource source = TestSource::kTrainingSample;
  /// Index into the candidate pool for selected tests, -1 for synthetic.
  std::int64_t pool_index = -1;
};

/// One producer-selection decision of the combined method (§IV-D): before
/// emitting test `step`, the per-test gain of the cached Algorithm 2 probe
/// batch is compared against the refreshed best marginal gain of
/// Algorithm 1. Recorded by CombinedGenerator so the switch rule is
/// observable (and testable) without re-running the generators.
struct SwitchDecision {
  std::size_t step = 0;          ///< index of the next test to be emitted
  double greedy_gain = 0.0;      ///< Algorithm 1's provably-best next gain
  double synthetic_gain = 0.0;   ///< Algorithm 2 probe per-test gain
  bool chose_synthetic = false;  ///< true iff the rule picked Algorithm 2
  bool probe_refreshed = false;  ///< probe was (re)generated for this step
};

/// Output of a generation run: the ordered tests plus the coverage
/// trajectory (VC(X) after each test) — the series plotted in Fig 3.
struct GenerationResult {
  std::vector<FunctionalTest> tests;
  std::vector<double> coverage_after;
  double final_coverage = 0.0;
  /// §IV-D decision trace (CombinedGenerator only; empty otherwise).
  std::vector<SwitchDecision> decisions;
};

}  // namespace dnnv::testgen

#endif  // DNNV_TESTGEN_FUNCTIONAL_TEST_H_
