// Batched fault simulation: score a whole TestSuite against a whole
// FaultUniverse in sweeps.
//
// The sequential reference (run_sequential) is the literal historical loop:
// one ip::QuantizedIp, inject a fault into its weight memory through
// ip::FaultInjector, predict_all (which rebuilds ALL derived execution
// state), revert, repeat — O(model) per fault before any inference runs.
//
// run_batched produces the bit-identical fault×test detection matrix
// event-style: ONE clean traced forward per test batch on the nn::Workspace
// arena caches every layer's int8 input, then each fault is applied through
// the O(layer) point-fault surface (poke_code / requant / accumulator
// masks) and re-executed only from its fault site onward
// (QuantModel::forward_resume) — layers upstream of the fault cannot
// change, so the suffix replay is exact, and integer execution is
// bit-identical across batch sizes and thread counts by the engine's core
// invariant. Faults are fanned out over the ThreadPool with per-worker
// model clones; early-exit mode stops each fault at its first detecting
// test chunk (scanning tests in index order, so first_detected is mode-
// and schedule-invariant).
#ifndef DNNV_FAULT_SIMULATOR_H_
#define DNNV_FAULT_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "fault/fault_model.h"
#include "util/bitset.h"
#include "util/thread_pool.h"
#include "validate/test_suite.h"

namespace dnnv::fault {

/// Which execution engine the faults are simulated on.
enum class SimBackend : std::uint8_t {
  kInt8 = 0,   ///< the integer engine (the artifact the IP executes)
  kFloat = 1,  ///< dequantized float mirror (code faults only)
};

enum class SimMode : std::uint8_t {
  kFullMatrix = 0,  ///< complete fault×test detection matrix
  kEarlyExit = 1,   ///< stop each fault at its first detection
};

struct SimOptions {
  SimMode mode = SimMode::kFullMatrix;
  SimBackend backend = SimBackend::kInt8;
  ThreadPool* pool = nullptr;  ///< fan-out pool; nullptr = ThreadPool::shared
  std::int64_t chunk = 16;     ///< early-exit test-chunk size
};

struct SimResult {
  std::size_t num_tests = 0;

  /// Full-matrix mode only: rows[f].test(t) == fault f detected by test t
  /// (label differs from the clean device's label). Empty in early-exit
  /// mode.
  std::vector<DynamicBitset> rows;

  /// Per fault: lowest detecting test index, -1 if undetected.
  std::vector<std::int64_t> first_detected;

  std::size_t detected = 0;  ///< faults with first_detected >= 0

  /// The clean device's labels on the suite (the detection reference).
  std::vector<int> clean_labels;

  double detection_rate() const {
    return first_detected.empty()
               ? 0.0
               : static_cast<double>(detected) /
                     static_cast<double>(first_detected.size());
  }
};

class FaultSimulator {
 public:
  /// `clean` must be refreshed (as quantize()/load() leave it); the suite
  /// provides the test inputs — detection compares against the clean
  /// device's own labels, so fault effect is measured, not quantization
  /// skew.
  FaultSimulator(const quant::QuantModel& clean,
                 const validate::TestSuite& suite);

  /// Event-driven batched simulation (see file header).
  SimResult run_batched(const FaultUniverse& universe,
                        const SimOptions& options = {});

  /// The sequential inject→predict→revert reference loop.
  SimResult run_sequential(const FaultUniverse& universe,
                           const SimOptions& options = {});

 private:
  SimResult run_batched_int8(const FaultUniverse& universe,
                             const SimOptions& options);
  SimResult run_batched_float(const FaultUniverse& universe,
                              const SimOptions& options);

  quant::QuantModel clean_;
  std::vector<Tensor> inputs_;
  Shape item_shape_;
};

}  // namespace dnnv::fault

#endif  // DNNV_FAULT_SIMULATOR_H_
