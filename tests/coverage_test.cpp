// Coverage-engine tests: hand-computed activation sets on tiny networks,
// equivalence of the two engines, accumulator algebra and neuron coverage.
#include <gtest/gtest.h>

#include <filesystem>

#include "coverage/accumulator.h"
#include "coverage/neuron_coverage.h"
#include "coverage/parameter_coverage.h"
#include "coverage/report.h"
#include "exp/model_zoo.h"
#include "nn/activation_layer.h"
#include "nn/builder.h"
#include "nn/dense.h"
#include "nn/sequential.h"
#include "tensor/batch.h"
#include "util/error.h"

namespace dnnv::cov {
namespace {

using nn::ActivationKind;
using nn::ActivationLayer;
using nn::Dense;
using nn::Sequential;

// Builds dense(2->2) -> ReLU -> dense(2->2) with hand-set weights.
// Global parameter order: W1 (4), b1 (2), W2 (4), b2 (2) = 12 params.
Sequential hand_network() {
  Rng rng(1);
  Sequential model;
  auto d1 = std::make_unique<Dense>(2, 2, rng);
  d1->weights() = Tensor(Shape{2, 2}, {1, 0,    // unit0 reads x0
                                       0, 1});  // unit1 reads x1
  d1->bias() = Tensor(Shape{2}, {0, 0});
  model.add(std::move(d1));
  model.add(std::make_unique<ActivationLayer>(ActivationKind::kReLU));
  auto d2 = std::make_unique<Dense>(2, 2, rng);
  d2->weights() = Tensor(Shape{2, 2}, {1, 1, 1, 1});
  d2->bias() = Tensor(Shape{2}, {0, 0});
  model.add(std::move(d2));
  return model;
}

TEST(ParameterCoverageTest, HandComputedActivationSet) {
  // Input (1, -1): hidden pre-acts (1, -1); ReLU kills unit1.
  //  - W1 row0 (params 0,1): unit0 alive, |x| = (1,1) -> both activated.
  //  - W1 row1 (params 2,3): unit1 dead (zero downstream grad) -> inactive.
  //  - b1: param 4 active (unit0), param 5 inactive.
  //  - W2 (params 6..9): inputs to d2 are h=(1,0): weights reading h0
  //    (params 6, 8) active; weights reading h1 (7, 9) inactive (h1 = 0).
  //  - b2 (params 10, 11): always active.
  Sequential model = hand_network();
  ParameterCoverage coverage(model, CoverageConfig{});
  const Tensor x(Shape{2}, {1.0f, -1.0f});
  const DynamicBitset mask = coverage.activation_mask(x);

  const std::vector<bool> expected = {true,  true,  false, false,  // W1
                                      true,  false,                // b1
                                      true,  false, true,  false,  // W2
                                      true,  true};                // b2
  ASSERT_EQ(mask.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(mask.test(i), expected[i]) << "param " << i;
  }
  EXPECT_DOUBLE_EQ(coverage.validation_coverage(x), 7.0 / 12.0);
}

TEST(ParameterCoverageTest, BothEnginesAgreeOnHandNetwork) {
  Sequential model = hand_network();
  CoverageConfig exact;
  exact.engine = CoverageEngine::kPerClassExact;
  ParameterCoverage pc_exact(model, exact);
  Sequential model2 = hand_network();
  ParameterCoverage pc_abs(model2, CoverageConfig{});
  const Tensor x(Shape{2}, {1.0f, -1.0f});
  EXPECT_TRUE(pc_abs.activation_mask(x) == pc_exact.activation_mask(x));
}

TEST(ParameterCoverageTest, AllDeadInputActivatesOnlyTailBiases) {
  // Input (-1, -1) -> both hidden units dead: only the downstream-of-ReLU
  // parameters with direct output paths remain: b2 (and nothing else).
  Sequential model = hand_network();
  ParameterCoverage coverage(model, CoverageConfig{});
  const DynamicBitset mask = coverage.activation_mask(Tensor(Shape{2}, {-1, -1}));
  EXPECT_EQ(mask.count(), 2u);
  EXPECT_TRUE(mask.test(10));
  EXPECT_TRUE(mask.test(11));
}

// Property sweep: the absolute-sensitivity engine equals the exact per-class
// engine on random ReLU networks (cancellation sets have measure zero).
class EngineEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineEquivalence, AbsSensitivityMatchesPerClassExact) {
  Rng rng(GetParam());
  nn::ConvNetSpec spec;
  spec.in_channels = 1;
  spec.in_height = 8;
  spec.in_width = 8;
  spec.conv_channels = {3, 3};
  spec.dense_units = {12};
  spec.num_classes = 4;
  spec.activation = ActivationKind::kReLU;
  Sequential model = nn::build_convnet(spec, rng);

  Rng data_rng(GetParam() + 1000);
  CoverageConfig exact;
  exact.engine = CoverageEngine::kPerClassExact;
  Sequential model2 = model.clone();
  ParameterCoverage pc_abs(model, CoverageConfig{});
  ParameterCoverage pc_exact(model2, exact);
  for (int trial = 0; trial < 3; ++trial) {
    const Tensor x = Tensor::rand_uniform(Shape{1, 8, 8}, data_rng, 0.0f, 1.0f);
    const auto abs_mask = pc_abs.activation_mask(x);
    const auto exact_mask = pc_exact.activation_mask(x);
    EXPECT_TRUE(abs_mask == exact_mask)
        << "engines disagree: abs=" << abs_mask.count()
        << " exact=" << exact_mask.count();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomModels, EngineEquivalence,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

TEST(ParameterCoverageTest, EpsilonMonotonicallyShrinksCoverage) {
  Rng rng(3);
  Sequential model = nn::build_mlp(6, {8}, 3, ActivationKind::kTanh, rng);
  Rng data_rng(4);
  const Tensor x = Tensor::rand_uniform(Shape{6}, data_rng, -1.0f, 1.0f);
  std::size_t previous = SIZE_MAX;
  for (const double eps : {0.0, 1e-3, 1e-2, 1e-1, 1.0}) {
    Sequential clone = model.clone();
    CoverageConfig config;
    config.epsilon = eps;
    ParameterCoverage coverage(clone, config);
    const std::size_t count = coverage.activation_mask(x).count();
    EXPECT_LE(count, previous) << "eps " << eps;
    previous = count;
  }
}

TEST(ParameterCoverageTest, TanhActivatesEverythingAtZeroEpsilon) {
  // Tanh has no exact zero-gradient region, so with eps = 0 every parameter
  // on a path to the output is activated for generic inputs.
  Rng rng(5);
  Sequential model = nn::build_mlp(4, {6}, 2, ActivationKind::kTanh, rng);
  ParameterCoverage coverage(model, CoverageConfig{});
  Rng data_rng(6);
  const Tensor x = Tensor::rand_uniform(Shape{4}, data_rng, -1.0f, 1.0f);
  EXPECT_EQ(coverage.activation_mask(x).count(),
            static_cast<std::size_t>(coverage.param_count()));
}

TEST(ParameterCoverageTest, ParallelMasksMatchSequential) {
  Rng rng(7);
  Sequential model = nn::build_mlp(5, {7}, 3, ActivationKind::kReLU, rng);
  Rng data_rng(8);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 9; ++i) {
    inputs.push_back(Tensor::rand_uniform(Shape{5}, data_rng, -1.0f, 1.0f));
  }
  const auto parallel = activation_masks(model, inputs, CoverageConfig{});
  ParameterCoverage coverage(model, CoverageConfig{});
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_TRUE(parallel[i] == coverage.activation_mask(inputs[i])) << i;
  }
}

// The tentpole guarantee of the batched engine: one batched forward plus
// per-item sensitivity passes produces masks BIT-identical to the per-item
// path, on both zoo models (Tanh CNN / ReLU CNN) at epsilon 0 and 1e-4.
TEST(ParameterCoverageTest, BatchedMasksBitIdenticalToPerItemOnZooModels) {
  exp::ZooOptions zoo;
  zoo.tiny = true;
  zoo.cache_dir =
      (std::filesystem::temp_directory_path() / "dnnv_cov_test_zoo").string();
  struct Case {
    exp::TrainedModel trained;
    data::MaterializedData pool;
  };
  std::vector<Case> cases;
  cases.push_back({exp::mnist_tanh(zoo), exp::digits_test(40)});
  cases.push_back({exp::cifar_relu(zoo), exp::shapes_test(40)});

  for (auto& c : cases) {
    for (const double epsilon : {0.0, 1e-4}) {
      CoverageConfig config;
      config.epsilon = epsilon;

      // Per-item reference path.
      nn::Sequential ref_model = c.trained.model.clone();
      ParameterCoverage ref(ref_model, config);
      std::vector<DynamicBitset> expected;
      for (const auto& input : c.pool.images) {
        expected.push_back(ref.activation_mask(input));
      }

      // Batched engine, driven directly...
      nn::Sequential batch_model = c.trained.model.clone();
      ParameterCoverage batched(batch_model, config);
      const Tensor batch = stack_batch(c.pool.images);
      const auto actual = batched.activation_masks_batched(batch);
      ASSERT_EQ(actual.size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_TRUE(actual[i] == expected[i])
            << c.trained.name << " eps=" << epsilon << " item " << i;
      }

      // ...and through the pool-level free function (chunked + threaded).
      const auto pooled =
          activation_masks(c.trained.model, c.pool.images, config);
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_TRUE(pooled[i] == expected[i])
            << c.trained.name << " eps=" << epsilon << " pooled item " << i;
      }
    }
  }
}

// ---------- CoverageAccumulator ----------

TEST(AccumulatorTest, UnionSemantics) {
  CoverageAccumulator acc(10);
  EXPECT_DOUBLE_EQ(acc.coverage(), 0.0);
  DynamicBitset a(10);
  a.set(1);
  a.set(2);
  DynamicBitset b(10);
  b.set(2);
  b.set(3);
  EXPECT_EQ(acc.marginal_gain(a), 2u);
  acc.add(a);
  EXPECT_EQ(acc.marginal_gain(b), 1u);
  acc.add(b);
  EXPECT_EQ(acc.covered_count(), 3u);
  EXPECT_DOUBLE_EQ(acc.coverage(), 0.3);
  EXPECT_EQ(acc.num_tests(), 2u);
}

TEST(AccumulatorTest, RejectsEmptyUniverse) {
  EXPECT_THROW(CoverageAccumulator(0), Error);
}

// ---------- Neuron coverage ----------

TEST(NeuronCoverageTest, CountsUnitsAndChannels) {
  Rng rng(9);
  nn::ConvNetSpec spec;
  spec.in_channels = 1;
  spec.in_height = 8;
  spec.in_width = 8;
  spec.conv_channels = {4, 6};
  spec.dense_units = {12};
  spec.num_classes = 3;
  Sequential model = nn::build_convnet(spec, rng);
  NeuronCoverage coverage(model, Shape{1, 8, 8});
  // conv channels 4 + 6, dense units 12 (logit layer has no activation).
  EXPECT_EQ(coverage.neuron_count(), 4u + 6u + 12u);
}

TEST(NeuronCoverageTest, HandComputedNeuronMask) {
  Sequential model = hand_network();  // 2 hidden ReLU neurons
  NeuronCoverage coverage(model, Shape{2});
  const auto mask = coverage.neuron_mask(Tensor(Shape{2}, {1.0f, -1.0f}));
  ASSERT_EQ(mask.size(), 2u);
  EXPECT_TRUE(mask.test(0));   // unit0 fires
  EXPECT_FALSE(mask.test(1));  // unit1 dead
}

TEST(NeuronCoverageTest, ThresholdRaisesBar) {
  Sequential model = hand_network();
  NeuronCoverageConfig config;
  config.threshold = 10.0;
  NeuronCoverage coverage(model, Shape{2}, config);
  const auto mask = coverage.neuron_mask(Tensor(Shape{2}, {1.0f, -1.0f}));
  EXPECT_EQ(mask.count(), 0u);  // activation 1.0 below threshold 10
}

TEST(NeuronCoverageTest, ParallelMatchesSequential) {
  Rng rng(10);
  Sequential model = nn::build_mlp(4, {5, 6}, 2, ActivationKind::kReLU, rng);
  Rng data_rng(11);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 6; ++i) {
    inputs.push_back(Tensor::rand_uniform(Shape{4}, data_rng, -1.0f, 1.0f));
  }
  const auto parallel = neuron_masks(model, Shape{4}, inputs);
  NeuronCoverage coverage(model, Shape{4});
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_TRUE(parallel[i] == coverage.neuron_mask(inputs[i])) << i;
  }
}

// ---------- per-layer report ----------

TEST(ReportTest, SplitsByTensor) {
  Sequential model = hand_network();
  DynamicBitset covered(12);
  covered.set(0);
  covered.set(1);
  covered.set(10);
  const auto report = per_layer_coverage(model, covered);
  ASSERT_EQ(report.size(), 4u);  // W1, b1, W2, b2
  EXPECT_EQ(report[0].name, "dense0.weight");
  EXPECT_EQ(report[0].covered, 2u);
  EXPECT_EQ(report[0].total, 4u);
  EXPECT_DOUBLE_EQ(report[0].fraction(), 0.5);
  EXPECT_EQ(report[1].covered, 0u);
  EXPECT_TRUE(report[3].is_bias);
  EXPECT_EQ(report[3].covered, 1u);
}

TEST(ReportTest, SizeMismatchThrows) {
  Sequential model = hand_network();
  EXPECT_THROW(per_layer_coverage(model, DynamicBitset(5)), Error);
}

}  // namespace
}  // namespace dnnv::cov
