// src/fault/ tests: fault identity/serialization, deterministic universe
// enumeration, structural + matrix collapsing, greedy suite compaction, the
// O(layer) point-fault surface vs a full derived-state rebuild, and the
// core contract of the batched simulator — bit-identity with the sequential
// inject→predict→revert loop on both zoo models, float and int8 backends,
// across thread counts, on universes that include no-op stuck-at faults.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "exp/model_zoo.h"
#include "fault/collapse.h"
#include "fault/compact.h"
#include "fault/fault_model.h"
#include "fault/qualify.h"
#include "fault/simulator.h"
#include "nn/builder.h"
#include "pipeline/user.h"
#include "pipeline/vendor.h"
#include "quant/quant_model.h"
#include "tensor/batch.h"
#include "util/error.h"
#include "util/thread_pool.h"
#include "validate/test_suite.h"

namespace dnnv {
namespace {

using nn::ActivationKind;
using nn::Sequential;

Sequential small_net(std::uint64_t seed = 11) {
  Rng rng(seed);
  return nn::build_mlp(6, {10}, 4, ActivationKind::kReLU, rng);
}

std::vector<Tensor> random_pool(int count, std::uint64_t seed = 12) {
  Rng rng(seed);
  std::vector<Tensor> pool;
  for (int i = 0; i < count; ++i) {
    pool.push_back(Tensor::rand_uniform(Shape{6}, rng, -1.0f, 1.0f));
  }
  return pool;
}

quant::QuantModel small_qmodel(std::uint64_t seed = 11) {
  return quant::QuantModel::quantize(small_net(seed), random_pool(32, seed + 1));
}

validate::TestSuite suite_from(quant::QuantModel& qmodel,
                               const std::vector<Tensor>& inputs) {
  return validate::TestSuite::from_labels(
      inputs, qmodel.predict_labels(stack_batch(inputs)));
}

exp::ZooOptions tiny_options() {
  exp::ZooOptions options;
  options.tiny = true;
  options.cache_dir =
      (std::filesystem::temp_directory_path() / "dnnv_test_zoo").string();
  return options;
}

fault::Fault make_fault(fault::FaultKind kind, std::uint8_t layer, bool is_bias,
                        std::uint8_t bit, std::int64_t unit,
                        std::uint8_t value = 0) {
  fault::Fault f;
  f.kind = kind;
  f.layer = layer;
  f.is_bias = is_bias ? 1 : 0;
  f.bit = bit;
  f.value = value;
  f.unit = unit;
  return f;
}

std::size_t first_dense_layer(const quant::QuantModel& qmodel) {
  for (std::size_t i = 0; i < qmodel.layers().size(); ++i) {
    if (qmodel.layers()[i].kind == quant::QLayerKind::kDense) return i;
  }
  ADD_FAILURE() << "no dense layer";
  return 0;
}

/// param_views() index of (layer, is_bias): weights before bias, per
/// parameterized layer, layers ascending.
std::size_t view_index(const quant::QuantModel& qmodel, std::size_t layer,
                       bool is_bias) {
  std::size_t ordinal = 0;
  for (std::size_t i = 0; i < layer; ++i) {
    const auto kind = qmodel.layers()[i].kind;
    if (kind == quant::QLayerKind::kConv2d ||
        kind == quant::QLayerKind::kDense) {
      ++ordinal;
    }
  }
  return 2 * ordinal + (is_bias ? 1 : 0);
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b,
                          const std::string& what) {
  ASSERT_EQ(a.numel(), b.numel()) << what;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << what << " at " << i;
  }
}

void expect_same_result(const fault::SimResult& a, const fault::SimResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.num_tests, b.num_tests) << what;
  EXPECT_EQ(a.clean_labels, b.clean_labels) << what;
  EXPECT_EQ(a.first_detected, b.first_detected) << what;
  EXPECT_EQ(a.detected, b.detected) << what;
  ASSERT_EQ(a.rows.size(), b.rows.size()) << what;
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_TRUE(a.rows[i] == b.rows[i]) << what << " row " << i;
  }
}

// ---------- Fault identity, serialization, enumeration ----------

TEST(FaultModelTest, FaultedCodeSemantics) {
  const auto code = static_cast<std::int8_t>(0x55);  // 0b01010101
  EXPECT_EQ(fault::faulted_code(
                code, make_fault(fault::FaultKind::kStuckAt0, 1, false, 0, 0)),
            static_cast<std::int8_t>(0x54));
  EXPECT_EQ(fault::faulted_code(
                code, make_fault(fault::FaultKind::kStuckAt1, 1, false, 1, 0)),
            static_cast<std::int8_t>(0x57));
  EXPECT_EQ(fault::faulted_code(
                code, make_fault(fault::FaultKind::kBitFlip, 1, false, 7, 0)),
            static_cast<std::int8_t>(0xD5));
  EXPECT_EQ(fault::faulted_code(code, make_fault(fault::FaultKind::kByteWrite,
                                                 1, false, 0, 0, 0x80)),
            static_cast<std::int8_t>(0x80));
  // Stuck-at at the current value is the identity (a structural no-op).
  EXPECT_EQ(fault::faulted_code(
                code, make_fault(fault::FaultKind::kStuckAt1, 1, false, 0, 0)),
            code);
  // Non-code kinds never touch the byte.
  EXPECT_EQ(fault::faulted_code(code, make_fault(fault::FaultKind::kRequantMult,
                                                 1, false, 30, 0)),
            code);
}

TEST(FaultModelTest, IdsAreUniqueAndSerializationRoundTrips) {
  const auto qmodel = small_qmodel();
  auto universe =
      fault::FaultUniverse::enumerate(qmodel, fault::universe_config("full"));
  ASSERT_FALSE(universe.empty());
  // Cover the remaining kinds the presets do not enumerate.
  universe.add(make_fault(fault::FaultKind::kBitFlip, 1, false, 6, 3));
  universe.add(make_fault(fault::FaultKind::kByteWrite, 1, true, 0, 2, 0x7F));

  std::set<std::uint64_t> ids;
  for (const fault::Fault& f : universe.faults()) {
    ids.insert(f.id());
    EXPECT_FALSE(f.describe().empty());
  }
  EXPECT_EQ(ids.size(), universe.size()) << "fault ids collide";

  ByteWriter writer;
  universe.save(writer);
  ByteReader reader(writer.bytes());
  const auto loaded = fault::FaultUniverse::load(reader);
  EXPECT_EQ(loaded.faults(), universe.faults());
}

TEST(FaultModelTest, EnumerationIsDeterministicAndThinningRespectsBudget) {
  const auto qmodel = small_qmodel();
  const auto config = fault::universe_config("stuck-at");
  const auto first = fault::FaultUniverse::enumerate(qmodel, config);
  const auto second = fault::FaultUniverse::enumerate(qmodel, config);
  EXPECT_EQ(first.faults(), second.faults());
  ASSERT_GT(first.size(), 100u);

  std::set<std::uint64_t> full_ids;
  for (const fault::Fault& f : first.faults()) full_ids.insert(f.id());

  auto strided = config;
  strided.stride = 3;
  const auto thin = fault::FaultUniverse::enumerate(qmodel, strided);
  EXPECT_LT(thin.size(), first.size());
  for (const fault::Fault& f : thin.faults()) {
    EXPECT_TRUE(full_ids.count(f.id())) << f.describe();
  }

  auto capped = config;
  capped.max_faults = 50;
  const auto budget = fault::FaultUniverse::enumerate(qmodel, capped);
  EXPECT_LE(budget.size(), 50u);
  EXPECT_GT(budget.size(), 0u);
  for (const fault::Fault& f : budget.faults()) {
    EXPECT_TRUE(full_ids.count(f.id())) << f.describe();
  }
}

TEST(FaultModelTest, PresetsAndConfigRoundTrip) {
  const auto stuck = fault::universe_config("stuck-at");
  EXPECT_TRUE(stuck.weight_stuck_at);
  EXPECT_TRUE(stuck.bias_stuck_at);
  EXPECT_FALSE(stuck.requant);
  EXPECT_FALSE(stuck.accumulator);

  const auto full = fault::universe_config("full");
  EXPECT_TRUE(full.requant);
  EXPECT_TRUE(full.accumulator);
  EXPECT_THROW(fault::universe_config("bogus"), Error);

  fault::UniverseConfig config;
  config.bits = {7, 3};
  config.requant = true;
  config.requant_bits = {28};
  config.stride = 5;
  config.max_faults = 123;
  ByteWriter writer;
  config.save(writer);
  ByteReader reader(writer.bytes());
  const auto loaded = fault::UniverseConfig::load(reader);
  EXPECT_EQ(loaded.weight_stuck_at, config.weight_stuck_at);
  EXPECT_EQ(loaded.bias_stuck_at, config.bias_stuck_at);
  EXPECT_EQ(loaded.requant, config.requant);
  EXPECT_EQ(loaded.accumulator, config.accumulator);
  EXPECT_EQ(loaded.bits, config.bits);
  EXPECT_EQ(loaded.requant_bits, config.requant_bits);
  EXPECT_EQ(loaded.acc_bits, config.acc_bits);
  EXPECT_EQ(loaded.stride, config.stride);
  EXPECT_EQ(loaded.max_faults, config.max_faults);
  EXPECT_FALSE(config.summary().empty());
}

TEST(FaultLayoutTest, MemoryFaultAdapterRoundTrips) {
  const auto qmodel = small_qmodel();
  const fault::FaultLayout layout(qmodel);
  EXPECT_EQ(layout.memory_size(),
            static_cast<std::size_t>(qmodel.param_count()));

  const auto universe =
      fault::FaultUniverse::enumerate(qmodel, fault::universe_config("stuck-at"));
  // A weight and a bias fault must survive the memory-level round trip.
  bool saw_weight = false, saw_bias = false;
  for (const fault::Fault& f : universe.faults()) {
    if ((f.is_bias && saw_bias) || (!f.is_bias && saw_weight)) continue;
    const ip::MemoryFault mf = layout.to_memory_fault(f);
    EXPECT_EQ(mf.address, layout.flat_address(f));
    EXPECT_EQ(mf.bit, static_cast<int>(f.bit));
    const fault::Fault back = layout.from_memory_fault(mf);
    EXPECT_EQ(back.kind, f.kind);
    EXPECT_EQ(back.layer, f.layer);
    EXPECT_EQ(back.is_bias, f.is_bias);
    EXPECT_EQ(back.unit, f.unit);
    EXPECT_EQ(back.bit, f.bit);
    (f.is_bias ? saw_bias : saw_weight) = true;
    if (saw_weight && saw_bias) break;
  }
  EXPECT_TRUE(saw_weight);
  EXPECT_TRUE(saw_bias);

  // The byte-write adapter keeps the replacement value.
  ip::MemoryFault write;
  write.kind = ip::MemoryFault::Kind::kByteWrite;
  write.address = 0;
  write.value = 0x3C;
  const fault::Fault back = layout.from_memory_fault(write);
  EXPECT_EQ(back.kind, fault::FaultKind::kByteWrite);
  EXPECT_EQ(back.value, 0x3C);
}

// ---------- Collapsing ----------

TEST(CollapseTest, StructuralCollapseDropsNoopsAndMergesEquivalents) {
  const auto qmodel = small_qmodel();
  const auto layer = static_cast<std::uint8_t>(first_dense_layer(qmodel));
  const std::int8_t code = qmodel.code_at(layer, false, 0);
  const auto bits = static_cast<std::uint8_t>(code);
  const std::uint8_t set_bit = (bits & 0x01) ? 0 : (bits & 0x02) ? 1 : 2;
  const bool bit_is_one = ((bits >> set_bit) & 1) != 0;

  fault::FaultUniverse universe;
  // No-op: stuck-at the value the bit already holds.
  universe.add(make_fault(bit_is_one ? fault::FaultKind::kStuckAt1
                                     : fault::FaultKind::kStuckAt0,
                          layer, false, set_bit, 0));
  // Effective fault, then a byte-write producing the SAME faulted code —
  // structurally equivalent, the second must merge into the first.
  universe.add(make_fault(fault::FaultKind::kBitFlip, layer, false, 7, 0));
  universe.add(make_fault(fault::FaultKind::kByteWrite, layer, false, 0, 0,
                          static_cast<std::uint8_t>(bits ^ 0x80)));
  // An unrelated survivor on another unit.
  universe.add(make_fault(fault::FaultKind::kBitFlip, layer, false, 7, 1));

  fault::CollapseStats stats;
  const auto kept = fault::collapse_structural(universe, qmodel, &stats);
  EXPECT_EQ(stats.input, 4u);
  EXPECT_EQ(stats.dropped_noop, 1u);
  EXPECT_EQ(stats.dropped_equivalent, 1u);
  EXPECT_EQ(stats.kept, 2u);
  EXPECT_EQ(stats.input, stats.kept + stats.dropped_noop +
                             stats.dropped_equivalent + stats.dropped_dead);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].kind, fault::FaultKind::kBitFlip);
  EXPECT_EQ(kept[0].unit, 0);
  EXPECT_EQ(kept[1].unit, 1);
}

TEST(CollapseTest, MatrixAnalysisGroupsClassesAndReducesDominance) {
  // 5 faults x 4 tests: f0 == f1 (one class), f2's row is a strict subset of
  // f0's (f0 dominated), f3 undetected, f4 detected by test 2 only.
  std::vector<DynamicBitset> rows(5, DynamicBitset(4));
  rows[0].set(0);
  rows[0].set(1);
  rows[1].set(0);
  rows[1].set(1);
  rows[2].set(0);
  rows[4].set(2);

  const fault::MatrixCollapse mc = fault::analyze_matrix(rows);
  EXPECT_EQ(mc.representative[0], 0u);
  EXPECT_EQ(mc.representative[1], 0u);
  EXPECT_EQ(mc.representative[2], 2u);
  EXPECT_EQ(mc.representative[3], 3u);
  EXPECT_EQ(mc.representative[4], 4u);
  EXPECT_EQ(mc.num_classes, 3u);
  EXPECT_EQ(mc.undetected, (std::vector<std::size_t>{3}));
  // Core: {f2, f4} — covering them covers f0/f1 for free.
  EXPECT_EQ(mc.core, (std::vector<std::size_t>{2, 4}));
}

// ---------- Compaction ----------

TEST(CompactTest, GreedyCoverKeepsMinimalDeterministicSet) {
  std::vector<DynamicBitset> rows(5, DynamicBitset(4));
  rows[0].set(0);
  rows[0].set(1);
  rows[1].set(0);
  rows[1].set(1);
  rows[2].set(0);
  rows[4].set(2);

  const fault::CompactionResult compaction =
      fault::compact_tests(rows, {2, 4}, 4);
  // Test 0 covers f2 (ties with test 2's gain of 1 — lowest index wins),
  // then test 2 covers f4; tests 1 and 3 are dropped.
  EXPECT_EQ(compaction.kept_tests, (std::vector<std::int64_t>{0, 2}));
  EXPECT_EQ(compaction.original_tests, 4u);
  EXPECT_EQ(compaction.target_faults, 2u);
  EXPECT_EQ(compaction.covered_faults, 2u);
  EXPECT_DOUBLE_EQ(compaction.keep_ratio(), 0.5);

  // compact_suite materializes the kept (input, label) pairs in order.
  auto qmodel = small_qmodel();
  const auto inputs = random_pool(4, 77);
  const auto suite = suite_from(qmodel, inputs);
  const auto kept = fault::compact_suite(suite, compaction);
  ASSERT_EQ(kept.size(), 2u);
  expect_bitwise_equal(kept.inputs()[0], suite.inputs()[0], "kept input 0");
  expect_bitwise_equal(kept.inputs()[1], suite.inputs()[2], "kept input 1");
  EXPECT_EQ(kept.golden_labels()[0], suite.golden_labels()[0]);
  EXPECT_EQ(kept.golden_labels()[1], suite.golden_labels()[2]);
}

// ---------- Point-fault surface ----------

TEST(ApplyFaultTest, PointPatchMatchesFullRefreshAndRevertsExactly) {
  auto clean = small_qmodel();
  const Tensor batch = stack_batch(random_pool(8, 99));
  const Tensor clean_logits = clean.forward(batch);
  const auto dense = first_dense_layer(clean);
  const auto layer = static_cast<std::uint8_t>(dense);
  const auto logit_layer =
      static_cast<std::uint8_t>(clean.layers().size() - 1);

  // Code faults: apply_fault's O(layer) patch must land bit-identical to
  // mutating the canonical codes + a FULL refresh_derived() rebuild.
  const std::vector<fault::Fault> code_faults = {
      make_fault(fault::FaultKind::kStuckAt1, layer, false, 7, 3),
      make_fault(fault::FaultKind::kStuckAt0, layer, true, 4, 1),
      make_fault(fault::FaultKind::kByteWrite, logit_layer, false, 0, 2, 0x55),
  };
  for (const fault::Fault& f : code_faults) {
    auto patched = clean;
    const fault::AppliedFault applied = fault::apply_fault(patched, f);
    const std::int8_t target = fault::faulted_code(applied.prev_code, f);

    auto rebuilt = clean;
    auto views = rebuilt.param_views();
    views[view_index(rebuilt, f.layer, f.is_bias != 0)].codes[f.unit] = target;
    rebuilt.refresh_derived();

    expect_bitwise_equal(patched.forward(batch), rebuilt.forward(batch),
                         "patched vs rebuilt: " + f.describe());
    fault::revert_fault(patched, applied);
    EXPECT_EQ(patched.code_at(f.layer, f.is_bias != 0, f.unit),
              applied.prev_code);
    expect_bitwise_equal(patched.forward(batch), clean_logits,
                         "revert: " + f.describe());
  }

  // A stuck-at matching the current bit is a no-op: flagged, zero effect.
  auto noop_model = clean;
  const std::int8_t c0 = clean.code_at(dense, false, 0);
  const bool bit0 = (static_cast<std::uint8_t>(c0) & 1) != 0;
  const fault::AppliedFault noop = fault::apply_fault(
      noop_model, make_fault(bit0 ? fault::FaultKind::kStuckAt1
                                  : fault::FaultKind::kStuckAt0,
                             layer, false, 0, 0));
  EXPECT_TRUE(noop.noop);
  expect_bitwise_equal(noop_model.forward(batch), clean_logits, "noop");

  // Requant-multiplier corruption: bit 30 of the Q31 multiplier flips, the
  // revert record restores the calibrated value exactly.
  auto requant_model = clean;
  const std::int32_t calibrated = clean.requant_multiplier(dense, 0);
  const fault::AppliedFault rq = fault::apply_fault(
      requant_model, make_fault(fault::FaultKind::kRequantMult, layer, false,
                                30, 0));
  EXPECT_EQ(rq.prev_multiplier, calibrated);
  EXPECT_EQ(requant_model.requant_multiplier(dense, 0),
            calibrated ^ (std::int32_t{1} << 30));
  fault::revert_fault(requant_model, rq);
  EXPECT_EQ(requant_model.requant_multiplier(dense, 0), calibrated);
  expect_bitwise_equal(requant_model.forward(batch), clean_logits,
                       "requant revert");

  // Accumulator stuck-at: armed by apply, disarmed by revert.
  auto acc_model = clean;
  const fault::AppliedFault acc = fault::apply_fault(
      acc_model,
      make_fault(fault::FaultKind::kAccStuckAt1, layer, false, 23, 0));
  fault::revert_fault(acc_model, acc);
  expect_bitwise_equal(acc_model.forward(batch), clean_logits, "acc revert");
}

// ---------- Simulator ----------

TEST(SimulatorTest, EarlyExitFirstDetectionMatchesFullMatrix) {
  auto qmodel = small_qmodel();
  const auto inputs = random_pool(12, 55);
  const auto suite = suite_from(qmodel, inputs);
  auto config = fault::universe_config("stuck-at");
  config.max_faults = 200;
  const auto universe = fault::FaultUniverse::enumerate(qmodel, config);

  fault::FaultSimulator sim(qmodel, suite);
  const fault::SimResult full = sim.run_batched(universe, {});
  ASSERT_GT(full.detected, 0u) << "universe too benign to exercise detection";

  for (const std::int64_t chunk : {std::int64_t{1}, std::int64_t{3},
                                   std::int64_t{16}}) {
    fault::SimOptions options;
    options.mode = fault::SimMode::kEarlyExit;
    options.chunk = chunk;
    const fault::SimResult early = sim.run_batched(universe, options);
    EXPECT_TRUE(early.rows.empty());
    EXPECT_EQ(early.first_detected, full.first_detected)
        << "chunk " << chunk;
    EXPECT_EQ(early.detected, full.detected);

    const fault::SimResult seq_early = sim.run_sequential(universe, options);
    EXPECT_EQ(seq_early.first_detected, full.first_detected)
        << "sequential, chunk " << chunk;
  }
}

TEST(SimulatorTest, BatchedMatchesSequentialOnZooModels) {
  for (const bool use_cifar : {false, true}) {
    const auto trained =
        use_cifar ? exp::cifar_relu(tiny_options()) : exp::mnist_tanh(tiny_options());
    const auto pool =
        use_cifar ? exp::shapes_train(80) : exp::digits_train(80);
    auto qmodel = quant::QuantModel::quantize(trained.model, pool.images);
    const std::vector<Tensor> inputs(pool.images.begin(),
                                     pool.images.begin() + 10);
    const auto suite = suite_from(qmodel, inputs);

    // Deliberately NOT structurally collapsed: the scored universe keeps its
    // genuine no-op stuck-at faults, which both loops must agree are
    // undetectable.
    auto config = fault::universe_config("stuck-at");
    config.max_faults = 96;
    const auto universe = fault::FaultUniverse::enumerate(qmodel, config);
    std::size_t noops = 0;
    for (const fault::Fault& f : universe.faults()) {
      const std::int8_t prev = qmodel.code_at(f.layer, f.is_bias != 0, f.unit);
      if (fault::faulted_code(prev, f) == prev) ++noops;
    }
    ASSERT_GT(noops, 0u) << "universe carries no no-op faults";

    fault::FaultSimulator sim(qmodel, suite);
    for (const fault::SimBackend backend :
         {fault::SimBackend::kInt8, fault::SimBackend::kFloat}) {
      fault::SimOptions options;
      options.backend = backend;
      const std::string tag =
          trained.name +
          (backend == fault::SimBackend::kInt8 ? "/int8" : "/float");
      const fault::SimResult seq = sim.run_sequential(universe, options);
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                        std::size_t{16}}) {
        ThreadPool pool_override(threads);
        options.pool = &pool_override;
        const fault::SimResult batched = sim.run_batched(universe, options);
        expect_same_result(seq, batched,
                           tag + " x" + std::to_string(threads));
      }
    }
  }
}

// ---------- Product flow ----------

TEST(QualifyTest, VendorShipsFaultQualifiedBundleAndUserReproduces) {
  const auto trained = exp::mnist_tanh(tiny_options());
  const auto pool = exp::digits_train(60);

  pipeline::VendorOptions options;
  options.method = "greedy";
  options.backend = "int8";
  options.num_tests = 12;
  options.generator.coverage = trained.coverage;
  options.model_name = trained.name;
  options.fault_model = "stuck-at";
  options.fault_budget = 256;
  options.compact = true;

  pipeline::VendorReport report;
  pipeline::Deliverable shipped = pipeline::VendorPipeline(options).run(
      trained.model, trained.item_shape, trained.num_classes, pool.images,
      &report);

  EXPECT_EQ(shipped.manifest.fault_model, "stuck-at");
  EXPECT_GT(shipped.manifest.fault_universe, 0);
  EXPECT_EQ(shipped.manifest.fault_universe, report.fault_stats.scored);
  EXPECT_EQ(report.fault_stats.scored, report.fault_stats.collapsed);
  EXPECT_GT(report.fault_stats.untestable, 0);
  EXPECT_GE(report.fault_stats.enumerated - report.fault_stats.untestable,
            report.fault_stats.collapsed);
  EXPECT_EQ(shipped.manifest.fault_detected, report.fault_stats.detected);
  EXPECT_EQ(shipped.suite.size(),
            static_cast<std::size_t>(report.fault_stats.kept_tests));
  EXPECT_LE(shipped.suite.size(), 12u);
  EXPECT_EQ(shipped.manifest.num_tests,
            static_cast<std::int64_t>(shipped.suite.size()));
  EXPECT_NE(shipped.manifest.summary().find("faults"), std::string::npos);

  // Ship it and have the user re-measure: the universe regenerates from the
  // manifest's UniverseConfig, so detected/collapsed must REPRODUCE exactly
  // — including after compaction (its contract preserves the detected set).
  const std::string path =
      (std::filesystem::temp_directory_path() / "dnnv_fault_deliverable.bin")
          .string();
  constexpr std::uint64_t kKey = 0xFA171CAFE;
  shipped.save_file(path, kKey);
  const auto validator = pipeline::UserValidator::load_file(path, kKey);
  EXPECT_TRUE(validator.validate().passed);
  const fault::FaultQualification remeasured = validator.fault_coverage();
  EXPECT_EQ(remeasured.scored, shipped.manifest.fault_universe);
  EXPECT_EQ(remeasured.detected, shipped.manifest.fault_detected);
  std::filesystem::remove(path);

  // Guard rails: fault qualification needs the int8 backend, compaction
  // needs a fault model.
  auto bad_backend = options;
  bad_backend.backend = "float";
  EXPECT_THROW(pipeline::VendorPipeline{bad_backend}, Error);
  auto bad_compact = options;
  bad_compact.fault_model.clear();
  EXPECT_THROW(pipeline::VendorPipeline{bad_compact}, Error);
}

}  // namespace
}  // namespace dnnv
