#include "testgen/neuron_selector.h"

#include <numeric>
#include <queue>

#include "util/error.h"

namespace dnnv::testgen {

GenerationResult NeuronCoverageSelector::select(
    const nn::Sequential& model, const Shape& item_shape,
    const std::vector<Tensor>& pool) const {
  DNNV_CHECK(!pool.empty(), "empty candidate pool");
  return select_with_masks(
      pool, cov::neuron_masks(model, item_shape, pool, options_.coverage));
}

GenerationResult NeuronCoverageSelector::select_with_masks(
    const std::vector<Tensor>& pool,
    const std::vector<DynamicBitset>& masks) const {
  DNNV_CHECK(!pool.empty(), "empty candidate pool");
  DNNV_CHECK(pool.size() == masks.size(), "pool/mask size mismatch");

  DynamicBitset covered(masks.front().size());
  std::vector<bool> used(pool.size(), false);

  struct Entry {
    std::size_t gain;
    std::size_t index;
    bool operator<(const Entry& other) const { return gain < other.gain; }
  };
  std::priority_queue<Entry> heap;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    heap.push({masks[i].count(), i});
  }

  GenerationResult result;
  auto add_test = [&](std::size_t index) {
    covered |= masks[index];
    used[index] = true;
    FunctionalTest test;
    test.input = pool[index];
    test.source = TestSource::kTrainingSample;
    test.pool_index = static_cast<std::int64_t>(index);
    result.tests.push_back(std::move(test));
    result.coverage_after.push_back(static_cast<double>(covered.count()) /
                                    static_cast<double>(covered.size()));
  };

  // Greedy phase (lazy evaluation, same argument as GreedySelector).
  while (static_cast<int>(result.tests.size()) < options_.max_tests &&
         !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (used[top.index]) continue;
    const std::size_t fresh = covered.count_new_bits(masks[top.index]);
    if (!heap.empty() && fresh < heap.top().gain) {
      top.gain = fresh;
      heap.push(top);
      continue;
    }
    if (fresh == 0) break;  // neuron coverage saturated
    add_test(top.index);
  }

  // Random fill after saturation.
  Rng rng(options_.fill_seed);
  std::vector<int> order(pool.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  for (const int idx : order) {
    if (static_cast<int>(result.tests.size()) >= options_.max_tests) break;
    if (!used[static_cast<std::size_t>(idx)]) {
      add_test(static_cast<std::size_t>(idx));
    }
  }
  result.final_coverage =
      static_cast<double>(covered.count()) / static_cast<double>(covered.size());
  return result;
}

GenerationResult RandomSelector::select(const std::vector<Tensor>& pool) const {
  DNNV_CHECK(!pool.empty(), "empty candidate pool");
  Rng rng(seed_);
  std::vector<int> order(pool.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  GenerationResult result;
  const int count = std::min<int>(max_tests_, static_cast<int>(pool.size()));
  for (int i = 0; i < count; ++i) {
    FunctionalTest test;
    test.input = pool[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
    test.source = TestSource::kRandom;
    test.pool_index = order[static_cast<std::size_t>(i)];
    result.tests.push_back(std::move(test));
  }
  return result;
}

}  // namespace dnnv::testgen
