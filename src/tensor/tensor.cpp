#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace dnnv {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.numel()), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  DNNV_CHECK(static_cast<std::int64_t>(data_.size()) == shape_.numel(),
             "data size " << data_.size() << " does not match shape "
                          << shape_.to_string());
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

void Tensor::resize(Shape new_shape) {
  shape_ = std::move(new_shape);
  data_.resize(static_cast<std::size_t>(shape_.numel()));
}

std::int64_t Tensor::flat_index(std::initializer_list<std::int64_t> index) const {
  DNNV_CHECK(index.size() == shape_.ndim(),
             "index rank " << index.size() << " does not match shape "
                           << shape_.to_string());
  std::int64_t flat = 0;
  std::size_t axis = 0;
  for (const auto i : index) {
    DNNV_CHECK(i >= 0 && i < shape_[axis],
               "index " << i << " out of range on axis " << axis << " of "
                        << shape_.to_string());
    flat = flat * shape_[axis] + i;
    ++axis;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<std::int64_t> index) {
  return data_[static_cast<std::size_t>(flat_index(index))];
}

float Tensor::at(std::initializer_list<std::int64_t> index) const {
  return data_[static_cast<std::size_t>(flat_index(index))];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  DNNV_CHECK(new_shape.numel() == numel(),
             "cannot reshape " << shape_.to_string() << " ("
                               << numel() << " elems) to " << new_shape.to_string());
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  DNNV_CHECK(same_shape(other), "shape mismatch " << shape_.to_string() << " vs "
                                                  << other.shape_.to_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  DNNV_CHECK(same_shape(other), "shape mismatch " << shape_.to_string() << " vs "
                                                  << other.shape_.to_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

double sum(const Tensor& t) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) acc += t[i];
  return acc;
}

double mean(const Tensor& t) {
  return t.numel() == 0 ? 0.0 : sum(t) / static_cast<double>(t.numel());
}

std::int64_t argmax(const Tensor& t) {
  DNNV_CHECK(t.numel() > 0, "argmax of empty tensor");
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < t.numel(); ++i) {
    if (t[i] > t[best]) best = i;
  }
  return best;
}

float max_abs(const Tensor& t) {
  float m = 0.0f;
  for (std::int64_t i = 0; i < t.numel(); ++i) m = std::max(m, std::fabs(t[i]));
  return m;
}

void clamp_(Tensor& t, float lo, float hi) {
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = std::clamp(t[i], lo, hi);
  }
}

double squared_distance(const Tensor& a, const Tensor& b) {
  DNNV_CHECK(a.same_shape(b), "shape mismatch " << a.shape().to_string() << " vs "
                                                << b.shape().to_string());
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace dnnv
