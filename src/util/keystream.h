// XOR keystream obfuscation for the shared test package.
//
// The paper states that the released (X, Y) package is "encrypted, thus their
// integrity can be ensured". Cryptography is outside the paper's scope; this
// module provides a deterministic keyed keystream (xoshiro-based) + CRC so the
// package format exercises the same encode/verify code path. It is
// demonstration-grade obfuscation, NOT a secure cipher — a real deployment
// would swap in AES-GCM behind the same interface.
#ifndef DNNV_UTIL_KEYSTREAM_H_
#define DNNV_UTIL_KEYSTREAM_H_

#include <cstdint>
#include <vector>

namespace dnnv {

/// XORs `bytes` in place with a keystream derived from `key`. Involutive:
/// applying twice with the same key restores the input.
void keystream_xor(std::vector<std::uint8_t>& bytes, std::uint64_t key);

}  // namespace dnnv

#endif  // DNNV_UTIL_KEYSTREAM_H_
