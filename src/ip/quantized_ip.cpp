#include "ip/quantized_ip.h"

#include <algorithm>
#include <cmath>

#include "tensor/batch.h"
#include "util/error.h"

namespace dnnv::ip {

QuantizedIp::QuantizedIp(const nn::Sequential& model, Shape item_shape)
    : model_(model.clone()), item_shape_(std::move(item_shape)) {
  std::vector<std::int64_t> dims;
  dims.push_back(1);
  dims.insert(dims.end(), item_shape_.dims().begin(), item_shape_.dims().end());
  const Shape out = model_.output_shape(Shape{dims});
  DNNV_CHECK(out.ndim() == 2, "IP model must produce [N, k] logits");
  num_classes_ = static_cast<int>(out[1]);

  // Quantise per parameter tensor: scale = max|w| / 127.
  const auto views = model_.param_views();
  std::size_t offset = 0;
  for (const auto& view : views) {
    QuantTensorInfo info;
    info.memory_offset = offset;
    info.size = view.size;
    float max_abs = 0.0f;
    for (std::int64_t i = 0; i < view.size; ++i) {
      max_abs = std::max(max_abs, std::fabs(view.data[i]));
    }
    info.scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    table_.push_back(info);
    offset += static_cast<std::size_t>(view.size);
  }
  memory_.resize(offset);
  original_params_.reserve(offset);
  std::size_t address = 0;
  std::size_t tensor = 0;
  for (const auto& view : views) {
    const float scale = table_[tensor++].scale;
    for (std::int64_t i = 0; i < view.size; ++i, ++address) {
      original_params_.push_back(view.data[i]);
      const int q = std::clamp(
          static_cast<int>(std::lround(view.data[i] / scale)), -127, 127);
      memory_[address] = static_cast<std::uint8_t>(static_cast<std::int8_t>(q));
    }
  }
  refresh_if_dirty();
}

void QuantizedIp::refresh_if_dirty() {
  if (!dirty_) return;
  std::size_t address = 0;
  std::size_t tensor = 0;
  for (const auto& view : model_.param_views()) {
    const float scale = table_[tensor++].scale;
    for (std::int64_t i = 0; i < view.size; ++i, ++address) {
      view.data[i] =
          scale * static_cast<float>(static_cast<std::int8_t>(memory_[address]));
    }
  }
  dirty_ = false;
}

int QuantizedIp::predict(const Tensor& input) {
  DNNV_CHECK(input.shape() == item_shape_,
             "input shape " << input.shape() << " != IP input " << item_shape_);
  refresh_if_dirty();
  return model_.predict_label(input);
}

std::vector<int> QuantizedIp::predict_all(const std::vector<Tensor>& inputs) {
  if (inputs.empty()) return {};
  refresh_if_dirty();
  return model_.predict_labels(stack_batch(inputs));
}

std::uint8_t QuantizedIp::read_byte(std::size_t address) const {
  DNNV_CHECK(address < memory_.size(), "address " << address << " out of range");
  return memory_[address];
}

void QuantizedIp::write_byte(std::size_t address, std::uint8_t value) {
  DNNV_CHECK(address < memory_.size(), "address " << address << " out of range");
  memory_[address] = value;
  dirty_ = true;
}

void QuantizedIp::flip_bit(std::size_t address, int bit) {
  DNNV_CHECK(address < memory_.size(), "address " << address << " out of range");
  DNNV_CHECK(bit >= 0 && bit < 8, "bit index " << bit << " out of range");
  memory_[address] ^= static_cast<std::uint8_t>(1u << bit);
  dirty_ = true;
}

float QuantizedIp::max_quantization_error() const {
  float max_err = 0.0f;
  std::size_t address = 0;
  std::size_t tensor = 0;
  // NOTE: compares against the float snapshot taken at construction, so it
  // reports quantisation error only while the memory is unfaulted.
  for (const auto& info : table_) {
    (void)info;
    const float scale = table_[tensor].scale;
    for (std::int64_t i = 0; i < table_[tensor].size; ++i, ++address) {
      const float dequant =
          scale * static_cast<float>(static_cast<std::int8_t>(memory_[address]));
      max_err = std::max(max_err,
                         std::fabs(dequant - original_params_[address]));
    }
    ++tensor;
  }
  return max_err;
}

float QuantizedIp::quantization_error_bound() const {
  float bound = 0.0f;
  for (const auto& info : table_) bound = std::max(bound, info.scale * 0.5f);
  return bound;
}

}  // namespace dnnv::ip
