// Shared protected-container file format: keyed keystream obfuscation plus
// a CRC-32 footer under a magic/version header. Used by the test-suite
// package (validate::TestSuite) and the release bundle
// (pipeline::Deliverable) so their encode/verify paths evolve together.
//
// Layout: u32 magic | u32 version | u32 crc32(cipher) | u64 size | cipher.
// The CRC covers the OBFUSCATED payload, so in-transit corruption is
// detected without the key; a wrong key decodes to garbage that the
// caller's payload parser rejects.
#ifndef DNNV_UTIL_PROTECTED_FILE_H_
#define DNNV_UTIL_PROTECTED_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dnnv {

/// Obfuscates `payload` with `key`, frames it with magic/version/CRC and
/// writes `path`.
void write_protected_file(const std::string& path,
                          std::vector<std::uint8_t> payload, std::uint64_t key,
                          std::uint32_t magic, std::uint32_t version,
                          const char* what);

/// Verifies magic, version, truncation and CRC, then de-obfuscates and
/// returns the plaintext payload. Throws dnnv::Error naming `what` with a
/// distinct diagnostic per failure mode: "bad magic" (not our container),
/// "unsupported ... version", "short read" (truncated header or payload)
/// and "bad CRC" (in-transit corruption).
std::vector<std::uint8_t> read_protected_file(const std::string& path,
                                              std::uint64_t key,
                                              std::uint32_t magic,
                                              std::uint32_t version,
                                              const char* what);

}  // namespace dnnv

#endif  // DNNV_UTIL_PROTECTED_FILE_H_
