#include "analysis/verifier.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "analysis/range_analysis.h"
#include "ip/systolic.h"
#include "pipeline/deliverable.h"
#include "quant/qops.h"
#include "quant/quantize.h"
#include "util/error.h"

namespace dnnv::analysis {
namespace {

using quant::QLayer;
using quant::QLayerKind;

class FindingSink {
 public:
  explicit FindingSink(std::vector<Finding>& out) : out_(out) {}

  template <typename... Parts>
  void add(Severity severity, const char* rule, const std::string& location,
           Parts&&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    out_.push_back(Finding{severity, rule, location, os.str()});
  }

 private:
  std::vector<Finding>& out_;
};

std::string layer_loc(std::size_t li, const QLayer& q) {
  std::ostringstream os;
  os << "L" << li << " " << (q.name.empty() ? "?" : q.name);
  return os.str();
}

bool finite_positive(float v) { return std::isfinite(v) && v > 0.0f; }

void check_scales(FindingSink& sink, std::size_t li, const QLayer& q,
                  float prev_out_scale) {
  const std::string loc = layer_loc(li, q);
  if (!finite_positive(q.in_scale) || !finite_positive(q.out_scale)) {
    sink.add(Severity::kError, "scale-positive", loc,
             "in/out scales must be finite and > 0 (got ", q.in_scale, " / ",
             q.out_scale, ")");
  }
  if (li > 0 && q.in_scale != prev_out_scale) {
    sink.add(Severity::kError, "scale-chain", loc,
             "in_scale ", q.in_scale, " != previous layer's out_scale ",
             prev_out_scale);
  }
  if ((q.kind == QLayerKind::kMaxPool || q.kind == QLayerKind::kFlatten) &&
      q.in_scale != q.out_scale) {
    sink.add(Severity::kError, "scale-chain", loc,
             "scale must pass through unchanged (in ", q.in_scale, ", out ",
             q.out_scale, ")");
  }
}

void check_param_layer(FindingSink& sink, std::size_t li, const QLayer& q) {
  const std::string loc = layer_loc(li, q);
  if (q.kind == QLayerKind::kConv2d &&
      (q.in_channels < 1 || q.out_channels < 1 || q.kernel < 1 ||
       q.stride < 1 || q.pad < 0)) {
    sink.add(Severity::kError, "geometry", loc, "invalid conv geometry ",
             q.in_channels, "->", q.out_channels, " k", q.kernel, " s",
             q.stride, " p", q.pad);
    return;  // channel/fanin products below would be nonsense
  }
  if (q.kind == QLayerKind::kDense &&
      (q.in_features < 1 || q.out_features < 1)) {
    sink.add(Severity::kError, "geometry", loc, "invalid dense geometry ",
             q.in_features, "->", q.out_features);
    return;
  }

  const std::int64_t channels = quant::weight_channels(q);
  const std::int64_t fanin = quant::weight_fanin(q);
  if (static_cast<std::int64_t>(q.weights.size()) != channels * fanin) {
    sink.add(Severity::kError, "weight-size", loc, "weights holds ",
             q.weights.size(), " codes, geometry needs ", channels * fanin);
  }
  if (static_cast<std::int64_t>(q.bias_codes.size()) != channels) {
    sink.add(Severity::kError, "weight-size", loc, "bias holds ",
             q.bias_codes.size(), " codes, geometry needs ", channels);
  }
  if (q.wscales.size() != 1 &&
      static_cast<std::int64_t>(q.wscales.size()) != channels) {
    sink.add(Severity::kError, "weight-size", loc, "wscales holds ",
             q.wscales.size(), " entries, expected 1 or ", channels);
  }
  for (const float s : q.wscales) {
    if (!finite_positive(s)) {
      sink.add(Severity::kError, "scale-positive", loc,
               "weight scale must be finite and > 0 (got ", s, ")");
      break;
    }
  }
  if (!finite_positive(q.bias_scale)) {
    sink.add(Severity::kError, "scale-positive", loc,
             "bias_scale must be finite and > 0 (got ", q.bias_scale, ")");
  }

  // The engine's symmetric-code invariant: -128 is never a valid code.
  std::size_t bad_codes = 0;
  for (const std::int8_t c : q.weights) bad_codes += c == -128 ? 1u : 0u;
  for (const std::int8_t c : q.bias_codes) bad_codes += c == -128 ? 1u : 0u;
  if (bad_codes > 0) {
    sink.add(Severity::kError, "code-range", loc, bad_codes,
             " parameter code(s) hold -128, outside the symmetric int8 grid");
  }

  // Derived state, when present (a freshly loaded/quantized model always
  // refreshes; absent derived state on a layer that needs it is an error).
  if (q.dequant_output) {
    if (static_cast<std::int64_t>(q.dequant_scales.size()) != channels) {
      sink.add(Severity::kError, "derived-state", loc,
               "dequant layer carries ", q.dequant_scales.size(),
               " dequant scales for ", channels, " channels");
    }
  } else {
    if (static_cast<std::int64_t>(q.requant.size()) != channels) {
      sink.add(Severity::kError, "derived-state", loc, "layer carries ",
               q.requant.size(), " requant entries for ", channels,
               " channels");
    }
    constexpr std::int64_t kQ31Lo = std::int64_t{1} << 30;
    constexpr std::int64_t kQ31Hi = (std::int64_t{1} << 31) - 1;
    for (std::size_t c = 0; c < q.requant.size(); ++c) {
      const std::int64_t m = q.requant[c].multiplier;
      const int shift = q.requant[c].shift;
      if (m != 0 && (m < kQ31Lo || m > kQ31Hi)) {
        sink.add(Severity::kError, "requant-multiplier-range", loc,
                 "channel ", c, " multiplier ", m,
                 " outside the normalized Q31 band [2^30, 2^31)");
      }
      if (shift < 0 || shift > 62) {
        sink.add(Severity::kError, "requant-shift-range", loc, "channel ", c,
                 " shift ", shift, " outside [0, 62]");
      }
    }
  }

  // Bias values that clamp on the int32 accumulator grid execute, but the
  // clamp silently rewrites the layer's affine map.
  for (std::size_t c = 0;
       c < q.bias_codes.size() &&
       static_cast<std::int64_t>(c) < channels && !q.wscales.empty();
       ++c) {
    const double acc_scale =
        static_cast<double>(q.in_scale) *
        static_cast<double>(quant::wscale_for(q, static_cast<std::int64_t>(c)));
    if (acc_scale <= 0.0 || !std::isfinite(acc_scale)) break;
    const double v =
        static_cast<double>(q.bias_scale) * q.bias_codes[c] / acc_scale;
    if (std::abs(v) >
        static_cast<double>(std::numeric_limits<std::int32_t>::max())) {
      sink.add(Severity::kWarning, "bias-width", loc, "channel ", c,
               " bias saturates the int32 accumulator grid (", v, ")");
      break;
    }
  }
}

void check_activation_layer(FindingSink& sink, std::size_t li,
                            const QLayer& q) {
  const std::string loc = layer_loc(li, q);
  bool out_of_range = false;
  for (const std::int8_t v : q.lut) out_of_range |= v == -128;
  if (out_of_range) {
    sink.add(Severity::kError, "lut-range", loc,
             "LUT emits -128, outside the symmetric int8 grid");
  }
  // The LUT is derived state: it must cover the full 256-code domain with
  // exactly the values build_activation_lut produces for the layer's scales.
  // A truncated or tampered table diverges somewhere.
  const std::array<std::int8_t, 256> expected =
      quant::build_activation_lut(q.activation, q.in_scale, q.out_scale);
  if (q.lut != expected) {
    std::size_t diverging = 0;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      diverging += q.lut[i] != expected[i] ? 1u : 0u;
    }
    sink.add(Severity::kError, "lut-domain", loc, "LUT diverges from the '",
             nn::to_string(q.activation), "' table at ", diverging,
             " of 256 codes");
  }
}

}  // namespace

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Finding::format() const {
  std::ostringstream os;
  os << to_string(severity) << "[" << rule << "] " << location << ": "
     << message;
  return os.str();
}

std::vector<Finding> verify_layers(const std::vector<quant::QLayer>& layers,
                                   int num_classes) {
  std::vector<Finding> findings;
  FindingSink sink(findings);
  if (layers.empty()) {
    sink.add(Severity::kError, "layer-order", "model", "model has no layers");
    return findings;
  }
  if (layers.front().kind != QLayerKind::kQuantize) {
    sink.add(Severity::kError, "layer-order", layer_loc(0, layers.front()),
             "first layer must be the quantize stage");
  }
  std::size_t quantize_layers = 0;
  std::size_t dequant_layers = 0;

  // Channel-count chain; -1 until the first parameter layer pins it.
  std::int64_t units = -1;
  float prev_out_scale = 0.0f;

  for (std::size_t li = 0; li < layers.size(); ++li) {
    const QLayer& q = layers[li];
    const std::string loc = layer_loc(li, q);
    check_scales(sink, li, q, prev_out_scale);
    prev_out_scale = q.out_scale;

    switch (q.kind) {
      case QLayerKind::kQuantize:
        ++quantize_layers;
        if (li != 0) {
          sink.add(Severity::kError, "layer-order", loc,
                   "quantize stage must be layer 0");
        }
        if (q.input_norm_scale == 0.0f ||
            !std::isfinite(q.input_norm_scale)) {
          sink.add(Severity::kError, "scale-positive", loc,
                   "input_norm_scale must be finite and non-zero");
        }
        break;

      case QLayerKind::kConv2d:
        check_param_layer(sink, li, q);
        if (units >= 0 && q.in_channels != units) {
          sink.add(Severity::kError, "shape-chain", loc, "consumes ",
                   q.in_channels, " channels, previous layer produces ",
                   units);
        }
        units = q.out_channels;
        if (q.dequant_output) {
          sink.add(Severity::kError, "layer-order", loc,
                   "conv layers cannot dequantize");
        }
        break;

      case QLayerKind::kDense:
        check_param_layer(sink, li, q);
        if (units >= 0 && (q.in_features < units ||
                           (units > 0 && q.in_features % units != 0))) {
          sink.add(Severity::kError, "shape-chain", loc, "consumes ",
                   q.in_features, " features, not a multiple of the ", units,
                   " upstream channels");
        }
        units = q.out_features;
        if (q.dequant_output) {
          ++dequant_layers;
          if (li + 1 != layers.size()) {
            sink.add(Severity::kError, "layer-order", loc,
                     "dequantizing logit layer must be last");
          }
          if (num_classes > 0 && q.out_features != num_classes) {
            sink.add(Severity::kError, "num-classes", loc, "emits ",
                     q.out_features, " logits, model declares ", num_classes,
                     " classes");
          }
        }
        break;

      case QLayerKind::kMaxPool:
        if (q.kernel < 1 || q.stride < 1) {
          sink.add(Severity::kError, "geometry", loc,
                   "invalid pool geometry k", q.kernel, " s", q.stride);
        }
        break;

      case QLayerKind::kActivation:
        check_activation_layer(sink, li, q);
        break;

      case QLayerKind::kFlatten:
        break;
    }
  }

  if (quantize_layers != 1) {
    sink.add(Severity::kError, "layer-order", "model", "expected exactly 1 ",
             "quantize stage, found ", quantize_layers);
  }
  if (dequant_layers != 1) {
    sink.add(Severity::kError, "layer-order", "model",
             "expected exactly 1 dequantizing logit layer, found ",
             dequant_layers);
  }
  return findings;
}

std::vector<Finding> verify_model(const quant::QuantModel& model) {
  std::vector<Finding> findings =
      verify_layers(model.layers(), model.num_classes());
  if (has_errors(findings)) return findings;  // ranges assume sane geometry

  FindingSink sink(findings);
  const ModelRange range = analyze_ranges(model);
  for (std::size_t li = 0; li < range.layers.size(); ++li) {
    const LayerRange& lr = range.layers[li];
    if (lr.acc.empty()) continue;
    const QLayer& q = model.layers()[li];
    const std::string loc = layer_loc(li, q);
    std::size_t overflow = 0;
    for (const std::uint8_t o : lr.overflow) overflow += o;
    if (overflow > 0) {
      sink.add(Severity::kWarning, "acc-overflow", loc, overflow, " of ",
               lr.acc.size(),
               " channel(s) can wrap the raw int32 accumulator");
    }
    std::size_t saturable = 0;
    for (const Interval& t : lr.acc) {
      saturable += (t.lo < std::numeric_limits<std::int32_t>::min() ||
                    t.hi > std::numeric_limits<std::int32_t>::max())
                       ? 1u
                       : 0u;
    }
    if (saturable > 0) {
      sink.add(Severity::kWarning, "bias-saturation", loc, saturable, " of ",
               lr.acc.size(), " channel(s) can clamp in the biased adder");
    }
    if (!q.dequant_output) {
      std::size_t dead = 0;
      for (const Interval& o : lr.out) dead += o == Interval{0, 0} ? 1u : 0u;
      if (dead > 0) {
        sink.add(Severity::kInfo, "dead-channel", loc, dead, " of ",
                 lr.out.size(), " channel(s) statically emit only code 0");
      }
    }
  }
  return findings;
}

std::vector<Finding> verify_deliverable(const pipeline::Deliverable& bundle) {
  std::vector<Finding> findings;
  if (bundle.has_quant) {
    findings = verify_model(bundle.qmodel);
  }
  FindingSink sink(findings);
  const pipeline::Manifest& m = bundle.manifest;

  if (m.num_tests != static_cast<std::int64_t>(bundle.suite.size())) {
    sink.add(Severity::kError, "manifest-tests", "manifest", "declares ",
             m.num_tests, " tests, bundle carries ", bundle.suite.size());
  }
  if (!(m.coverage >= 0.0 && m.coverage <= 1.0)) {
    sink.add(Severity::kError, "manifest-coverage", "manifest", "coverage ",
             m.coverage, " outside [0, 1]");
  }
  if (m.backend == "int8" && !bundle.has_quant) {
    sink.add(Severity::kError, "manifest-backend", "manifest",
             "suite qualified on 'int8' but no int8 artifact is shipped");
  }
  if (!m.fault_model.empty()) {
    if (!bundle.has_quant) {
      sink.add(Severity::kError, "manifest-fault", "manifest",
               "fault qualification '", m.fault_model,
               "' requires the int8 artifact");
    }
    if (m.fault_universe < 0 || m.fault_detected < 0 ||
        m.fault_detected > m.fault_universe) {
      sink.add(Severity::kError, "manifest-fault", "manifest",
               "inconsistent fault counts: detected ", m.fault_detected,
               " of ", m.fault_universe);
    }
  }
  // Static-analysis provenance (manifest v4): the user side re-runs the
  // vendor's classification from these fields, so they must be coherent.
  if (m.analysis_domain != "interval" && m.analysis_domain != "affine") {
    sink.add(Severity::kError, "manifest-analysis", "manifest",
             "unknown analysis domain '", m.analysis_domain,
             "' (interval|affine)");
  }
  if (m.fault_dominated < 0 || m.fault_conditional < 0) {
    sink.add(Severity::kError, "manifest-analysis", "manifest",
             "negative static-analysis counts: dominated ", m.fault_dominated,
             ", conditional ", m.fault_conditional);
  }
  if (static_cast<std::int64_t>(m.excitations.size()) != m.fault_conditional) {
    sink.add(Severity::kError, "manifest-analysis", "manifest", "carries ",
             m.excitations.size(), " excitation target(s) for ",
             m.fault_conditional, " conditionally masked fault(s)");
  }
  for (const Interval& domain : m.input_domains) {
    if (domain.lo > domain.hi || domain.lo < quant::kQmin ||
        domain.hi > quant::kQmax) {
      sink.add(Severity::kError, "manifest-analysis", "manifest",
               "calibrated input domain [", domain.lo, ", ", domain.hi,
               "] outside the symmetric int8 code grid");
      break;
    }
  }
  if (bundle.has_quant) {
    const int classes = bundle.qmodel.num_classes();
    std::size_t bad = 0;
    for (const int label : bundle.suite.golden_labels()) {
      bad += (label < 0 || label >= classes) ? 1u : 0u;
    }
    if (bad > 0) {
      sink.add(Severity::kError, "suite-labels", "suite", bad,
               " golden label(s) outside [0, ", classes, ")");
    }
  }
  return findings;
}

std::vector<Finding> verify_systolic(const ip::SystolicConfig& config) {
  std::vector<Finding> findings;
  FindingSink sink(findings);
  const std::string loc = "systolic";
  if (config.rows <= 0 || config.cols <= 0) {
    sink.add(Severity::kError, "systolic-dims", loc, "MAC array ",
             config.rows, "x", config.cols, " has a non-positive dimension");
  } else if (config.rows > 1024 || config.cols > 1024) {
    sink.add(Severity::kWarning, "systolic-dims", loc, "MAC array ",
             config.rows, "x", config.cols,
             " exceeds 1024 lanes on an axis — datasheet-implausible");
  }
  if (!std::isfinite(config.frequency_mhz) || config.frequency_mhz <= 0.0) {
    sink.add(Severity::kError, "systolic-frequency", loc, "clock ",
             config.frequency_mhz, " MHz must be finite and > 0");
  } else if (config.frequency_mhz > 10000.0) {
    sink.add(Severity::kWarning, "systolic-frequency", loc, "clock ",
             config.frequency_mhz, " MHz is past any plausible core clock");
  }
  if (!std::isfinite(config.memory_bytes_per_cycle) ||
      config.memory_bytes_per_cycle <= 0.0) {
    sink.add(Severity::kError, "systolic-bandwidth", loc, "bandwidth ",
             config.memory_bytes_per_cycle,
             " bytes/cycle must be finite and > 0");
  }
  if (config.tile_overhead_cycles < 0) {
    sink.add(Severity::kError, "systolic-overhead", loc, "tile overhead ",
             config.tile_overhead_cycles, " cycles is negative");
  } else if (config.tile_overhead_cycles > 4096) {
    sink.add(Severity::kWarning, "systolic-overhead", loc, "tile overhead ",
             config.tile_overhead_cycles,
             " cycles would dwarf per-tile compute");
  }
  return findings;
}

std::vector<Finding> verify_systolic_cost(const ip::ModelCost& cost,
                                          const ip::SystolicConfig& config) {
  std::vector<Finding> findings = verify_systolic(config);
  if (has_errors(findings)) return findings;  // bounds assume sane geometry

  FindingSink sink(findings);
  const std::int64_t lanes =
      static_cast<std::int64_t>(config.rows) * config.cols;
  std::int64_t total = 0;
  for (std::size_t li = 0; li < cost.layers.size(); ++li) {
    const ip::LayerCost& layer = cost.layers[li];
    std::ostringstream os;
    os << "L" << li << " " << (layer.name.empty() ? "?" : layer.name);
    const std::string loc = os.str();
    if (layer.macs < 0 || layer.weight_bytes < 0 ||
        layer.compute_cycles < 0 || layer.memory_cycles < 0) {
      sink.add(Severity::kError, "systolic-cost-negative", loc,
               "negative counter in the cost entry");
      continue;
    }
    if (layer.cycles !=
        std::max(layer.compute_cycles, layer.memory_cycles)) {
      sink.add(Severity::kError, "systolic-cycle-bound", loc, "cycles ",
               layer.cycles, " != max(compute ", layer.compute_cycles,
               ", memory ", layer.memory_cycles, ")");
    }
    // The array retires at most rows*cols MACs per cycle; a compute count
    // below ceil(macs / lanes) claims super-peak throughput.
    const std::int64_t floor_cycles = (layer.macs + lanes - 1) / lanes;
    if (layer.macs > 0 && layer.compute_cycles < floor_cycles) {
      sink.add(Severity::kError, "systolic-cycle-bound", loc, "compute ",
               layer.compute_cycles, " cycles below the ", config.rows, "x",
               config.cols, " peak lower bound ", floor_cycles);
    }
    total += layer.cycles;
  }
  if (total != cost.total_cycles) {
    sink.add(Severity::kError, "systolic-total", "systolic", "total ",
             cost.total_cycles, " cycles != per-layer sum ", total);
  }
  return findings;
}

bool has_errors(const std::vector<Finding>& findings) {
  for (const Finding& f : findings) {
    if (f.severity == Severity::kError) return true;
  }
  return false;
}

std::size_t count_severity(const std::vector<Finding>& findings,
                           Severity severity) {
  std::size_t n = 0;
  for (const Finding& f : findings) n += f.severity == severity ? 1u : 0u;
  return n;
}

void require_valid(const std::vector<Finding>& findings,
                   const std::string& what) {
  if (!has_errors(findings)) return;
  std::ostringstream os;
  os << what << ": IR verification failed with "
     << count_severity(findings, Severity::kError) << " error(s):";
  for (const Finding& f : findings) {
    if (f.severity == Severity::kError) os << "\n  " << f.format();
  }
  DNNV_THROW(os.str());
}

}  // namespace dnnv::analysis
