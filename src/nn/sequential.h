// Sequential model container and global parameter registry.
#ifndef DNNV_NN_SEQUENTIAL_H_
#define DNNV_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "nn/workspace.h"

namespace dnnv::nn {

/// A feed-forward stack of layers with:
///  - forward / backward / sensitivity passes chained across layers,
///  - a flat global parameter index space (the coordinate system used by
///    coverage bitsets and attack deltas): parameters are numbered in layer
///    order, weights before biases within a layer,
///  - binary (de)serialisation and deep cloning.
///
/// The model's outputs are logits; softmax is applied by the loss (training)
/// or implied by argmax (inference). A Sequential instance is NOT safe for
/// concurrent use — clone() per thread.
class Sequential {
 public:
  Sequential() = default;

  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  /// Appends a layer; returns *this for chaining. Layer gets a stable
  /// auto-generated instance name ("<kind><index>").
  Sequential& add(std::unique_ptr<Layer> layer);

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t index);
  const Layer& layer(std::size_t index) const;

  /// Forward pass over a batched input; returns logits.
  Tensor forward(const Tensor& input);

  /// Forward pass that additionally captures the output of every activation
  /// layer (the "neurons" used by the neuron-coverage baseline), in order.
  Tensor forward_with_activations(const Tensor& input,
                                  std::vector<Tensor>& activations);

  /// Reverse-mode pass; call after forward. Accumulates parameter gradients
  /// and returns the gradient w.r.t. the model input.
  Tensor backward(const Tensor& grad_logits);

  /// Absolute-sensitivity pass; call after forward. Accumulates parameter
  /// sensitivities into the gradient buffers and returns input sensitivities.
  Tensor sensitivity_backward(const Tensor& sens_logits);

  // ---- Batched engine (see nn/workspace.h) ----
  //
  // Same math as the value-returning methods above, but every intermediate
  // activation lives in `ws`, so a warmed-up pass performs no allocations.
  // The returned references point into `ws` and stay valid until its next
  // use. One Workspace serves one model instance on one thread.

  /// Batched forward; returns the logits buffer.
  const Tensor& forward(const Tensor& input, Workspace& ws);

  /// Batched forward capturing pointers to every activation layer's output
  /// (in order). The pointees live in `ws`.
  const Tensor& forward_with_activations(const Tensor& input, Workspace& ws,
                                         std::vector<const Tensor*>& activations);

  /// Reverse-mode pass over the most recent workspace forward.
  const Tensor& backward(const Tensor& grad_logits, Workspace& ws);

  /// Absolute-sensitivity pass over the most recent workspace forward.
  const Tensor& sensitivity_backward(const Tensor& sens_logits, Workspace& ws);

  /// Per-item absolute-sensitivity pass against the caches of the most
  /// recent BATCHED workspace forward: propagates `sens_logits` (shape
  /// [1, k]) for batch item `item` only, accumulating that item's parameter
  /// sensitivities into the grad buffers. One batched forward + N of these
  /// is the engine behind cov::ParameterCoverage::activation_masks_batched.
  const Tensor& sensitivity_backward_item(std::int64_t item,
                                          const Tensor& sens_logits,
                                          Workspace& ws);

  /// Zeroes all parameter gradient buffers.
  void zero_grads();

  /// Predicted class label (argmax of logits) for a single un-batched input.
  int predict_label(const Tensor& input);

  /// Predicted labels for a batched input.
  std::vector<int> predict_labels(const Tensor& batch);

  // ---- Global parameter registry ----

  /// All parameter views in global order.
  std::vector<ParamView> param_views();

  /// Total number of scalar parameters.
  std::int64_t param_count() const;

  float get_param(std::int64_t global_index);
  void set_param(std::int64_t global_index, float value);
  void add_to_param(std::int64_t global_index, float delta);
  float get_grad(std::int64_t global_index);

  /// "dense3.bias[7]"-style name for diagnostics.
  std::string param_name(std::int64_t global_index);

  /// True when the global index addresses a bias scalar.
  bool param_is_bias(std::int64_t global_index);

  /// Copies all parameters into a flat vector (global order).
  std::vector<float> snapshot_params();

  /// Restores parameters from snapshot_params() output.
  void restore_params(const std::vector<float>& snapshot);

  // ---- Persistence / copying ----

  void save(ByteWriter& writer) const;
  static Sequential load(ByteReader& reader);

  void save_file(const std::string& path) const;
  static Sequential load_file(const std::string& path);

  Sequential clone() const;

  /// Output shape for a given batched input shape.
  Shape output_shape(const Shape& input_shape) const;

  /// One-line architecture summary ("conv2d(1->8,k3) -> relu -> ...").
  std::string summary() const;

 private:
  struct ParamLocation {
    std::size_t layer;
    std::size_t view;        // index into that layer's param_views()
    std::int64_t offset;     // offset within the view
  };
  ParamLocation locate(std::int64_t global_index);

  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace dnnv::nn

#endif  // DNNV_NN_SEQUENTIAL_H_
