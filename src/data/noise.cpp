#include "data/noise.h"

#include <algorithm>

#include "util/error.h"

namespace dnnv::data {

NoiseDataset::NoiseDataset(std::uint64_t seed, std::int64_t size, int channels,
                           int image_size, float mean, float sigma)
    : seed_(seed),
      size_(size),
      channels_(channels),
      image_size_(image_size),
      mean_(mean),
      sigma_(sigma) {
  DNNV_CHECK(size >= 0, "negative dataset size");
  DNNV_CHECK(channels == 1 || channels == 3, "channels must be 1 or 3");
  DNNV_CHECK(image_size >= 1, "image size too small: " << image_size);
  DNNV_CHECK(sigma >= 0.0f, "negative noise sigma");
}

Shape NoiseDataset::item_shape() const {
  return Shape{channels_, image_size_, image_size_};
}

Sample NoiseDataset::get(std::int64_t index) const {
  DNNV_CHECK(index >= 0 && index < size_,
             "index " << index << " out of range " << size_);
  Rng rng = Rng(seed_ ^ 0x4015E00000000000ull).split(
      static_cast<std::uint64_t>(index));
  Sample sample;
  sample.image = Tensor(item_shape());
  for (std::int64_t i = 0; i < sample.image.numel(); ++i) {
    sample.image[i] = std::clamp(
        static_cast<float>(rng.normal(mean_, sigma_)), 0.0f, 1.0f);
  }
  return sample;
}

}  // namespace dnnv::data
