#include "data/digits.h"

#include <algorithm>
#include <cmath>

#include "data/render.h"
#include "util/error.h"

namespace dnnv::data {
namespace {

constexpr float kPi = 3.14159265358979323846f;

/// Stroke skeletons for digits 0-9 in the unit square (y grows downward).
/// Curved parts are sampled arcs; the renderer handles jitter and thickness.
std::vector<Polyline> digit_strokes(int digit) {
  switch (digit) {
    case 0:
      return {arc({0.5f, 0.5f}, 0.24f, 0.34f, 0.0f, 2.0f * kPi)};
    case 1:
      return {{{0.36f, 0.30f}, {0.52f, 0.16f}, {0.52f, 0.84f}},
              {{0.36f, 0.84f}, {0.68f, 0.84f}}};
    case 2:
      return {arc({0.5f, 0.34f}, 0.20f, 0.18f, -kPi, 0.0f),
              {{0.70f, 0.34f}, {0.62f, 0.55f}, {0.42f, 0.70f}, {0.30f, 0.84f}},
              {{0.30f, 0.84f}, {0.72f, 0.84f}}};
    case 3:
      return {arc({0.47f, 0.33f}, 0.19f, 0.17f, -0.8f * kPi, 0.5f * kPi),
              arc({0.47f, 0.67f}, 0.21f, 0.18f, -0.5f * kPi, 0.8f * kPi)};
    case 4:
      return {{{0.58f, 0.14f}, {0.28f, 0.60f}, {0.76f, 0.60f}},
              {{0.60f, 0.38f}, {0.60f, 0.86f}}};
    case 5:
      return {{{0.70f, 0.16f}, {0.34f, 0.16f}, {0.32f, 0.46f}},
              arc({0.48f, 0.64f}, 0.20f, 0.20f, -0.5f * kPi, 0.75f * kPi)};
    case 6:
      return {{{0.64f, 0.14f}, {0.44f, 0.38f}, {0.34f, 0.60f}},
              arc({0.50f, 0.66f}, 0.17f, 0.18f, 0.0f, 2.0f * kPi)};
    case 7:
      return {{{0.28f, 0.16f}, {0.72f, 0.16f}, {0.44f, 0.84f}},
              {{0.38f, 0.52f}, {0.64f, 0.52f}}};
    case 8:
      return {arc({0.5f, 0.32f}, 0.17f, 0.16f, 0.0f, 2.0f * kPi),
              arc({0.5f, 0.67f}, 0.20f, 0.19f, 0.0f, 2.0f * kPi)};
    case 9:
      return {arc({0.5f, 0.34f}, 0.18f, 0.17f, 0.0f, 2.0f * kPi),
              {{0.67f, 0.40f}, {0.62f, 0.66f}, {0.50f, 0.86f}}};
    default:
      DNNV_THROW("digit out of range: " << digit);
  }
}

}  // namespace

DigitsDataset::DigitsDataset(std::uint64_t seed, std::int64_t size,
                             int image_size)
    : seed_(seed), size_(size), image_size_(image_size) {
  DNNV_CHECK(size >= 0, "negative dataset size");
  DNNV_CHECK(image_size >= 8, "image size too small: " << image_size);
}

Shape DigitsDataset::item_shape() const {
  return Shape{1, image_size_, image_size_};
}

Sample DigitsDataset::get(std::int64_t index) const {
  DNNV_CHECK(index >= 0 && index < size_,
             "index " << index << " out of range " << size_);
  Rng rng = Rng(seed_).split(static_cast<std::uint64_t>(index));

  const int digit = static_cast<int>(rng.uniform_u64(10));
  Jitter jitter;
  jitter.dx = static_cast<float>(rng.uniform(-0.10, 0.10));
  jitter.dy = static_cast<float>(rng.uniform(-0.10, 0.10));
  jitter.rotation = static_cast<float>(rng.uniform(-0.35, 0.35));  // ±20°
  jitter.scale = static_cast<float>(rng.uniform(0.75, 1.20));
  jitter.shear = static_cast<float>(rng.uniform(-0.25, 0.25));
  const float thickness = static_cast<float>(rng.uniform(0.030, 0.075));
  const float noise = static_cast<float>(rng.uniform(0.02, 0.08));

  std::vector<Polyline> strokes;
  for (const auto& line : digit_strokes(digit)) {
    strokes.push_back(transform(line, jitter));
  }

  Sample sample;
  sample.label = digit;
  sample.image = Tensor(item_shape());

  // Faint paper-grain background (scanner texture): keeps in-distribution
  // images structured everywhere, as real scanned digits are.
  {
    Rng grain_rng = rng.split(23);
    const std::vector<float> grain =
        value_noise(image_size_, image_size_, 3, grain_rng);
    const float alpha = static_cast<float>(rng.uniform(0.10, 0.30));
    for (std::int64_t i = 0; i < sample.image.numel(); ++i) {
      sample.image[i] = alpha * grain[static_cast<std::size_t>(i)];
    }
  }
  draw_strokes(sample.image.data(), image_size_, image_size_, strokes, thickness);

  // Stray pen marks (most samples): scanned pages carry clutter, and the
  // marks give every stroke-orientation feature something to respond to.
  const int marks = rng.uniform_int(1, 3);
  for (int m = 0; m < marks; ++m) {
    std::vector<float> clutter(static_cast<std::size_t>(sample.image.numel()), 0.0f);
    Polyline mark;
    const int points = rng.uniform_int(2, 3);
    for (int p = 0; p < points; ++p) {
      mark.push_back({static_cast<float>(rng.uniform(0.0, 1.0)),
                      static_cast<float>(rng.uniform(0.0, 1.0))});
    }
    draw_strokes(clutter.data(), image_size_, image_size_, {mark},
                 static_cast<float>(rng.uniform(0.008, 0.02)));
    const float alpha = static_cast<float>(rng.uniform(0.25, 0.6));
    for (std::int64_t i = 0; i < sample.image.numel(); ++i) {
      sample.image[i] = std::min(
          1.0f, sample.image[i] + alpha * clutter[static_cast<std::size_t>(i)]);
    }
  }
  add_noise(sample.image.data(), sample.image.numel(), noise, rng);
  return sample;
}

}  // namespace dnnv::data
