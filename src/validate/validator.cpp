#include "validate/validator.h"

#include "util/error.h"

namespace dnnv::validate {

Verdict validate_ip(ip::BlackBoxIp& ip, const TestSuite& suite,
                    bool early_exit) {
  DNNV_CHECK(!suite.empty(), "cannot validate with an empty suite");
  Verdict verdict;
  if (early_exit) {
    for (std::size_t i = 0; i < suite.size(); ++i) {
      ++verdict.tests_run;
      if (ip.predict(suite.inputs()[i]) != suite.golden_labels()[i]) {
        verdict.first_failure = static_cast<int>(i);
        verdict.num_failures = 1;
        verdict.passed = false;
        return verdict;
      }
    }
    verdict.passed = true;
    return verdict;
  }
  accumulate_chunk(verdict, replay_chunk(ip, suite, 0, suite.size()));
  return verdict;
}

ChunkVerdict replay_chunk(ip::BlackBoxIp& ip, const TestSuite& suite,
                          std::size_t begin, std::size_t end) {
  DNNV_CHECK(begin < end && end <= suite.size(),
             "chunk [" << begin << ", " << end << ") out of suite range "
                       << suite.size());
  if (begin == 0 && end == suite.size()) {
    return compare_chunk(suite, 0, ip.predict_all(suite.inputs()));
  }
  std::vector<Tensor> inputs(suite.inputs().begin() +
                                 static_cast<std::ptrdiff_t>(begin),
                             suite.inputs().begin() +
                                 static_cast<std::ptrdiff_t>(end));
  return compare_chunk(suite, begin, ip.predict_all(inputs));
}

ChunkVerdict compare_chunk(const TestSuite& suite, std::size_t begin,
                           const std::vector<int>& labels) {
  DNNV_CHECK(begin + labels.size() <= suite.size(),
             "labels for [" << begin << ", " << begin + labels.size()
                            << ") overrun suite of " << suite.size());
  ChunkVerdict chunk;
  chunk.begin = begin;
  chunk.end = begin + labels.size();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] != suite.golden_labels()[begin + i]) {
      if (chunk.first_failure < 0) {
        chunk.first_failure = static_cast<int>(begin + i);
      }
      ++chunk.mismatches;
    }
  }
  return chunk;
}

void accumulate_chunk(Verdict& verdict, const ChunkVerdict& chunk) {
  verdict.tests_run += static_cast<int>(chunk.end - chunk.begin);
  if (chunk.mismatches > 0 && verdict.first_failure < 0) {
    verdict.first_failure = chunk.first_failure;
  }
  verdict.num_failures += chunk.mismatches;
  verdict.passed = verdict.num_failures == 0;
}

}  // namespace dnnv::validate
