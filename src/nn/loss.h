// Losses over logits: softmax cross-entropy (classification) and MSE.
#ifndef DNNV_NN_LOSS_H_
#define DNNV_NN_LOSS_H_

#include <vector>

#include "tensor/tensor.h"

namespace dnnv::nn {

/// Loss value plus gradient w.r.t. the logits (same shape as logits).
struct LossResult {
  double loss = 0.0;
  Tensor grad_logits;
};

/// Row-wise numerically-stable softmax of a [N, k] tensor.
Tensor softmax(const Tensor& logits);

/// Mean softmax cross-entropy of batched logits [N, k] against integer labels.
/// grad_logits is the gradient of the MEAN loss (already divided by N).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels);

/// Mean squared error against a dense target of the same shape.
LossResult mse_loss(const Tensor& output, const Tensor& target);

/// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace dnnv::nn

#endif  // DNNV_NN_LOSS_H_
