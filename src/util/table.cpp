#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.h"

namespace dnnv {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DNNV_CHECK(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  DNNV_CHECK(cells.size() == headers_.size(),
             "row has " << cells.size() << " cells, expected " << headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << std::left << row[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      const std::string& cell = row[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (const char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string format_percent(double fraction) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << fraction * 100.0 << '%';
  return os.str();
}

std::string format_double(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

}  // namespace dnnv
