#include "nn/layer.h"

namespace dnnv::nn {

std::int64_t Layer::param_count() {
  std::int64_t total = 0;
  for (const auto& view : param_views()) total += view.size;
  return total;
}

void Layer::zero_grads() {
  for (auto& view : param_views()) {
    for (std::int64_t i = 0; i < view.size; ++i) view.grad[i] = 0.0f;
  }
}

}  // namespace dnnv::nn
