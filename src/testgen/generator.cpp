#include "testgen/generator.h"

#include <map>
#include <utility>

#include "testgen/gradient_generator.h"
#include "testgen/greedy_selector.h"
#include "testgen/neuron_selector.h"
#include "util/error.h"

namespace dnnv::testgen {
namespace {

const nn::Sequential& require_model(const GenContext& ctx, const char* method) {
  DNNV_CHECK(ctx.model != nullptr, method << " generator needs ctx.model");
  return *ctx.model;
}

const std::vector<Tensor>& require_pool(const GenContext& ctx,
                                        const char* method) {
  DNNV_CHECK(ctx.pool != nullptr, method << " generator needs ctx.pool");
  return *ctx.pool;
}

void require_item(const GenContext& ctx, const char* method) {
  DNNV_CHECK(ctx.item_shape.ndim() > 0,
             method << " generator needs ctx.item_shape");
  DNNV_CHECK(ctx.num_classes > 0, method << " generator needs ctx.num_classes");
}

/// Resolves the shared accumulator, or backs the run with `scratch` when the
/// caller did not pass one (the trajectory still reaches the result). The
/// universe comes from the masks, the criterion's point space, or (legacy)
/// the model's parameter count — in that order.
cov::CoverageAccumulator& resolve_accumulator(
    const GenContext& ctx, std::unique_ptr<cov::CoverageAccumulator>& scratch) {
  if (ctx.accumulator != nullptr) return *ctx.accumulator;
  const std::size_t universe =
      ctx.masks != nullptr && !ctx.masks->empty()
          ? ctx.masks->front().size()
      : ctx.criterion != nullptr
          ? ctx.criterion->total_points()
          : static_cast<std::size_t>(ctx.model->param_count());
  scratch = std::make_unique<cov::CoverageAccumulator>(universe);
  return *scratch;
}

// ---- Adapters (delegate to the pre-registry classes verbatim) ----

class GreedyAdapter final : public Generator {
 public:
  explicit GreedyAdapter(const GeneratorConfig& config) {
    options_.max_tests = config.max_tests;
    options_.coverage = config.coverage;
    options_.stop_on_zero_gain = config.stop_on_zero_gain;
  }

  std::string name() const override { return "greedy"; }

  GenerationResult generate(const GenContext& ctx) const override {
    const auto& pool = require_pool(ctx, "greedy");
    std::unique_ptr<cov::CoverageAccumulator> scratch;
    auto& accumulator = resolve_accumulator(ctx, scratch);
    const GreedySelector selector(options_);
    if (ctx.masks != nullptr) {
      std::vector<bool> used(pool.size(), false);
      return selector.select_with_masks(pool, *ctx.masks, accumulator, used);
    }
    if (ctx.criterion != nullptr) {
      const auto masks = ctx.criterion->measure_pool(pool);
      std::vector<bool> used(pool.size(), false);
      return selector.select_with_masks(pool, masks, accumulator, used);
    }
    const auto& model = require_model(ctx, "greedy");
    return selector.select(model, pool, accumulator);
  }

 private:
  GreedySelector::Options options_;
};

class GradientAdapter final : public Generator {
 public:
  explicit GradientAdapter(const GeneratorConfig& config) {
    options_ = config.gradient;
    options_.max_tests = config.max_tests;
    options_.coverage = config.coverage;
  }

  std::string name() const override { return "gradient"; }

  GenerationResult generate(const GenContext& ctx) const override {
    const auto& model = require_model(ctx, "gradient");
    require_item(ctx, "gradient");
    std::unique_ptr<cov::CoverageAccumulator> scratch;
    auto& accumulator = resolve_accumulator(ctx, scratch);
    return GradientGenerator(options_).generate(
        model, ctx.item_shape, ctx.num_classes, accumulator, ctx.criterion);
  }

 private:
  GradientGenerator::Options options_;
};

class CombinedAdapter final : public Generator {
 public:
  explicit CombinedAdapter(const GeneratorConfig& config) {
    options_.max_tests = config.max_tests;
    options_.policy = config.policy;
    options_.probe_refresh = config.probe_refresh;
    options_.coverage = config.coverage;
    options_.gradient = config.gradient;
    options_.gradient.coverage = config.coverage;
  }

  std::string name() const override { return "combined"; }

  GenerationResult generate(const GenContext& ctx) const override {
    const auto& model = require_model(ctx, "combined");
    const auto& pool = require_pool(ctx, "combined");
    require_item(ctx, "combined");
    std::unique_ptr<cov::CoverageAccumulator> scratch;
    auto& accumulator = resolve_accumulator(ctx, scratch);
    const CombinedGenerator generator(options_);
    if (ctx.criterion != nullptr) {
      if (ctx.masks != nullptr) {
        return generator.generate(*ctx.criterion, model, pool, *ctx.masks,
                                  ctx.item_shape, ctx.num_classes,
                                  accumulator);
      }
      const auto masks = ctx.criterion->measure_pool(pool);
      return generator.generate(*ctx.criterion, model, pool, masks,
                                ctx.item_shape, ctx.num_classes, accumulator);
    }
    if (ctx.masks != nullptr) {
      return generator.generate(model, pool, *ctx.masks, ctx.item_shape,
                                ctx.num_classes, accumulator);
    }
    return generator.generate(model, pool, ctx.item_shape, ctx.num_classes,
                              accumulator);
  }

 private:
  CombinedGenerator::Options options_;
};

class NeuronAdapter final : public Generator {
 public:
  explicit NeuronAdapter(const GeneratorConfig& config) {
    options_.max_tests = config.max_tests;
    options_.coverage = config.neuron;
    options_.fill_seed = config.neuron_fill_seed;
  }

  std::string name() const override { return "neuron"; }

  GenerationResult generate(const GenContext& ctx) const override {
    const auto& pool = require_pool(ctx, "neuron");
    const NeuronCoverageSelector selector(options_);
    // With a criterion the "neuron" METHOD becomes its selection strategy —
    // greedy to saturation, then random fill — over the criterion's points
    // (its masks when precomputed). Without one it keeps its historical
    // neuron-coverage metric.
    if (ctx.masks != nullptr && ctx.criterion != nullptr) {
      return selector.select_with_masks(pool, *ctx.masks);
    }
    if (ctx.criterion != nullptr) {
      return selector.select_with_masks(pool,
                                        ctx.criterion->measure_pool(pool));
    }
    const auto& model = require_model(ctx, "neuron");
    DNNV_CHECK(ctx.item_shape.ndim() > 0,
               "neuron generator needs ctx.item_shape");
    return selector.select(model, ctx.item_shape, pool);
  }

 private:
  NeuronCoverageSelector::Options options_;
};

class RandomAdapter final : public Generator {
 public:
  explicit RandomAdapter(const GeneratorConfig& config)
      : max_tests_(config.max_tests), seed_(config.random_seed) {}

  std::string name() const override { return "random"; }

  GenerationResult generate(const GenContext& ctx) const override {
    const auto& pool = require_pool(ctx, "random");
    GenerationResult result = RandomSelector(max_tests_, seed_).select(pool);
    // With pool masks (or a criterion to measure them) at hand the control
    // also reports its coverage trajectory (what Fig 3 plots for the random
    // curve). Selection itself never consults coverage.
    if (ctx.masks != nullptr) {
      DNNV_CHECK(ctx.masks->size() == pool.size(), "pool/mask size mismatch");
      std::unique_ptr<cov::CoverageAccumulator> scratch;
      auto& accumulator = resolve_accumulator(ctx, scratch);
      for (const auto& test : result.tests) {
        accumulator.add(
            (*ctx.masks)[static_cast<std::size_t>(test.pool_index)]);
        result.coverage_after.push_back(accumulator.coverage());
      }
      result.final_coverage = accumulator.coverage();
    } else if (ctx.criterion != nullptr) {
      // Measure only the selected tests — the whole-pool pass is for benches
      // that share masks across methods.
      std::vector<Tensor> selected;
      selected.reserve(result.tests.size());
      for (const auto& test : result.tests) selected.push_back(test.input);
      std::unique_ptr<cov::CoverageAccumulator> scratch;
      auto& accumulator = resolve_accumulator(ctx, scratch);
      for (const auto& mask : ctx.criterion->measure_pool(selected)) {
        accumulator.add(mask);
        result.coverage_after.push_back(accumulator.coverage());
      }
      result.final_coverage = accumulator.coverage();
    }
    return result;
  }

 private:
  int max_tests_;
  std::uint64_t seed_;
};

template <typename Adapter>
GeneratorFactory factory_of() {
  return [](const GeneratorConfig& config) -> std::unique_ptr<Generator> {
    return std::make_unique<Adapter>(config);
  };
}

struct Registry {
  std::map<std::string, GeneratorFactory> factories;
  std::vector<std::string> order;

  void add(const std::string& name, GeneratorFactory factory) {
    if (factories.emplace(name, factory).second) {
      order.push_back(name);
    } else {
      factories[name] = std::move(factory);
    }
  }

  static Registry& instance() {
    static Registry registry = [] {
      Registry r;
      r.add("greedy", factory_of<GreedyAdapter>());
      r.add("gradient", factory_of<GradientAdapter>());
      r.add("combined", factory_of<CombinedAdapter>());
      r.add("neuron", factory_of<NeuronAdapter>());
      r.add("random", factory_of<RandomAdapter>());
      return r;
    }();
    return registry;
  }
};

}  // namespace

std::unique_ptr<Generator> make_generator(const std::string& name,
                                          const GeneratorConfig& config) {
  const auto& registry = Registry::instance();
  const auto it = registry.factories.find(name);
  if (it == registry.factories.end()) {
    std::string known;
    for (const auto& n : registry.order) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    DNNV_THROW("unknown generator '" << name << "' (registered: " << known
                                     << ")");
  }
  return it->second(config);
}

bool generator_registered(const std::string& name) {
  return Registry::instance().factories.count(name) > 0;
}

std::vector<std::string> generator_names() {
  return Registry::instance().order;
}

void register_generator(const std::string& name, GeneratorFactory factory) {
  Registry::instance().add(name, std::move(factory));
}

}  // namespace dnnv::testgen
