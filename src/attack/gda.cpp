#include "attack/gda.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "nn/loss.h"
#include "tensor/batch.h"
#include "util/error.h"

namespace dnnv::attack {

Perturbation GradientDescentAttack::craft(nn::Sequential& model,
                                          const Tensor& victim,
                                          Rng& rng) const {
  const Tensor batched = stack_batch({victim});
  const Tensor clean_logits = model.forward(batched);
  const std::int64_t k = clean_logits.shape()[1];
  const std::int64_t clean = argmax(clean_logits);

  // Random wrong target (stealthy targeted misclassification).
  std::int64_t target = static_cast<std::int64_t>(rng.uniform_u64(
      static_cast<std::uint64_t>(k - 1)));
  if (target >= clean) ++target;

  std::map<std::int64_t, float> accumulated;  // global index -> total delta
  std::map<std::int64_t, float> originals;    // exact pre-attack values
  bool flipped = false;

  for (int iter = 0; iter < options_.max_iterations && !flipped; ++iter) {
    const Tensor logits = model.forward(batched);
    const nn::LossResult loss =
        nn::softmax_cross_entropy(logits, {static_cast<int>(target)});
    model.zero_grads();
    model.backward(loss.grad_logits);

    // Rank parameters by gradient magnitude; update only the top-m.
    std::vector<std::pair<float, std::int64_t>> ranked;
    std::int64_t base = 0;
    for (const auto& view : model.param_views()) {
      for (std::int64_t i = 0; i < view.size; ++i) {
        const float g = view.grad[i];
        if (g != 0.0f) ranked.emplace_back(std::fabs(g), base + i);
      }
      base += view.size;
    }
    if (ranked.empty()) break;
    const std::size_t m = std::min<std::size_t>(
        static_cast<std::size_t>(options_.params_per_step), ranked.size());
    std::partial_sort(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(m),
                      ranked.end(), std::greater<>());

    for (std::size_t j = 0; j < m; ++j) {
      const std::int64_t index = ranked[j].second;
      const float grad = model.get_grad(index);
      // Sign step scaled by relative gradient magnitude: step sizes stay
      // bounded by learning_rate regardless of the loss scale.
      float delta = -options_.learning_rate * (grad > 0.0f ? 1.0f : -1.0f) *
                    ranked[j].first / ranked.front().first;
      if (originals.find(index) == originals.end()) {
        originals[index] = model.get_param(index);
      }
      float& total = accumulated[index];
      const float capped =
          std::clamp(total + delta, -options_.max_delta, options_.max_delta);
      delta = capped - total;
      total = capped;
      model.add_to_param(index, delta);
    }
    flipped = argmax(model.forward(batched)) != clean;
  }

  // Stealth refinement: scale the whole accumulated delta down to (near)
  // the smallest factor that still flips the victim.
  float scale = 1.0f;
  if (flipped) {
    auto flips_at = [&](float factor) {
      for (const auto& [index, delta] : accumulated) {
        model.set_param(index, originals[index] + factor * delta);
      }
      return argmax(model.forward(batched)) != clean;
    };
    float lo = 0.0f;
    float hi = 1.0f;
    for (int refine = 0; refine < 7; ++refine) {
      const float mid = 0.5f * (lo + hi);
      if (flips_at(mid)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    scale = std::min(1.0f, hi * 1.05f);
  }

  // Restore the model exactly; report the (scaled) sparse delta.
  Perturbation p;
  p.kind = "gda";
  for (const auto& [index, original] : originals) {
    model.set_param(index, original);
  }
  for (const auto& [index, delta] : accumulated) {
    const float scaled = scale * delta;
    if (scaled != 0.0f) p.deltas.push_back({index, scaled});
  }
  if (!flipped) return {};
  return p;
}

}  // namespace dnnv::attack
