// Layer interface: forward, reverse-mode autodiff, and absolute-sensitivity
// propagation (the coverage engine's fault-propagation pass).
#ifndef DNNV_NN_LAYER_H_
#define DNNV_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/serialize.h"

namespace dnnv::nn {

class Workspace;

/// Non-owning view of one named parameter tensor and its gradient buffer.
/// `data` and `grad` are flat arrays of `size` floats owned by the layer.
struct ParamView {
  std::string name;   ///< e.g. "conv0.weight"
  float* data;        ///< parameter values
  float* grad;        ///< gradient / sensitivity accumulator (same layout)
  std::int64_t size;  ///< number of scalars
  bool is_bias;       ///< true for bias vectors (SBA targets biases)
};

/// Base class for all layers.
///
/// Protocol (single-threaded per instance; clone() for parallel use):
///   1. forward(x) caches whatever the backward passes need.
///   2. backward(grad_out) consumes the cache of the most recent forward and
///      ACCUMULATES parameter gradients into the grad buffers; returns the
///      gradient w.r.t. the layer input.
///   3. sensitivity_backward(sens_out) is the absolute-value analogue used by
///      the parameter-coverage engine: sens_out is elementwise nonnegative,
///      propagation uses |W| and |activation'|, and the resulting parameter
///      sensitivities are ACCUMULATED INTO THE SAME grad buffers (gradients
///      and sensitivities are never needed simultaneously).
/// Callers zero the grad buffers (zero_grads) between uses.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Stable type tag, also used in the serialisation format ("dense", ...).
  virtual std::string kind() const = 0;

  /// Instance name used to prefix parameter names (set by Sequential).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  virtual Tensor forward(const Tensor& input) = 0;
  virtual Tensor backward(const Tensor& grad_output) = 0;
  virtual Tensor sensitivity_backward(const Tensor& sens_output) = 0;

  // ---- Batched engine entry points (see nn/workspace.h) ----
  //
  // The *_into variants compute the same function as forward/backward/
  // sensitivity_backward but write into a caller-provided buffer (already
  // shaped via output_shape) and take scratch from the workspace, so a
  // warmed-up pass performs no allocations. `index` is the layer's position
  // in its Sequential and namespaces its workspace slots. Defaults fall back
  // to the allocating methods — layers override them on the hot paths.

  /// Batched forward into `output`; must also populate the layer's backward
  /// caches exactly like forward().
  virtual void forward_into(std::size_t index, const Tensor& input,
                            Tensor& output, Workspace& ws);

  /// Reverse-mode pass into `grad_input` (shaped like the cached input).
  virtual void backward_into(std::size_t index, const Tensor& grad_output,
                             Tensor& grad_input, Workspace& ws);

  /// Absolute-sensitivity pass into `sens_input`.
  virtual void sensitivity_backward_into(std::size_t index,
                                         const Tensor& sens_output,
                                         Tensor& sens_input, Workspace& ws);

  /// Per-item absolute-sensitivity pass against the caches of the most
  /// recent BATCHED forward: propagates `sens_output` (leading dim 1) for
  /// batch item `item`, accumulating parameter sensitivities into the grad
  /// buffers exactly as sensitivity_backward would on a batch of one. This
  /// is the primitive behind ParameterCoverage::activation_masks_batched —
  /// one batched forward amortised across per-item coverage passes.
  virtual void sensitivity_backward_item(std::size_t index, std::int64_t item,
                                         const Tensor& sens_output,
                                         Tensor& sens_input, Workspace& ws);

  /// Output shape for a given (un-batched or batched) input shape.
  virtual Shape output_shape(const Shape& input_shape) const = 0;

  /// Parameter views in a stable order (weights before biases). Default: none.
  virtual std::vector<ParamView> param_views() { return {}; }

  /// Total scalar parameter count.
  std::int64_t param_count() const;

  /// Zeroes all gradient buffers.
  void zero_grads();

  /// True for activation layers (their outputs define "neurons" for the
  /// neuron-coverage baseline).
  virtual bool is_activation() const { return false; }

  /// Deep copy (parameters included, caches excluded).
  virtual std::unique_ptr<Layer> clone() const = 0;

  /// Serialises layer config + parameters.
  virtual void save(ByteWriter& writer) const = 0;

 protected:
  Layer() = default;
  Layer(const Layer&) = default;
  Layer& operator=(const Layer&) = default;

 private:
  std::string name_;
};

}  // namespace dnnv::nn

#endif  // DNNV_NN_LAYER_H_
