// Client side of the validation wire protocol: a blocking, single-threaded
// connection to a net::ValidationServer.
//
// load()/open() are synchronous round-trips. submit() is pipelined — any
// number may be outstanding; replies arrive in submit order and are read
// with next_event() (chunks, verdicts, typed errors, the final kBye).
// Convenience wrappers cover the two common shapes: validate() for one
// blocking whole-range verdict, stream_events() for chunk-by-chunk reads.
//
// Thread model: one thread drives one client. Typed server rejections
// surface as NetError (code() is the WireError) from the synchronous calls
// and as kError events on the pipelined path.
#ifndef DNNV_NET_CLIENT_H_
#define DNNV_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "net/protocol.h"
#include "net/socket.h"
#include "pipeline/service.h"
#include "validate/validator.h"

namespace dnnv::net {

class ValidationClient {
 public:
  /// One server→client notification on the pipelined path.
  struct Event {
    enum class Kind { kChunk, kVerdict, kError, kBye };
    Kind kind = Kind::kBye;
    std::uint32_t submit_id = 0;  ///< which submit (kError: its ref, may be 0)
    pipeline::VerdictStream::Chunk chunk;  ///< kChunk
    validate::Verdict verdict;             ///< kVerdict
    WireError error = WireError::kNone;    ///< kError
    std::string message;                   ///< kError
    ByeReason bye_reason = ByeReason::kGoodbye;  ///< kBye
  };

  /// Connects (TCP_NODELAY set). If the server is at capacity its kBusy
  /// rejection surfaces as NetError(kBusy) from the first request.
  static ValidationClient connect(const std::string& host, std::uint16_t port);

  ValidationClient(ValidationClient&&) = default;
  ValidationClient& operator=(ValidationClient&&) = default;

  /// Asks the server to load (or reuse) the deliverable at its `path`.
  /// Throws NetError carrying the typed corruption code on a bad container.
  LoadResponse load(const std::string& path, std::uint64_t key);

  /// Opens a session over a deliverable id from load() (or a server-side
  /// preload). The full SessionConfig travels on the wire.
  OpenResponse open(std::uint32_t deliverable_id,
                    const pipeline::SessionConfig& config = {});

  /// Pipelined submit of suite range [begin, end) (end 0 = whole suite);
  /// returns the submit id its replies will carry. With stream=true the
  /// server sends kChunk frames before the verdict.
  std::uint32_t submit(std::uint32_t session_id, bool stream = false,
                       std::uint64_t begin = 0, std::uint64_t end = 0);

  /// Blocks for the next server notification. False once the stream is
  /// finished (kBye was already delivered, or the peer vanished).
  bool next_event(Event& event);

  /// Pumps events until `submit_id`'s verdict: returns it, throws NetError
  /// on its kError. Chunks and verdicts of OTHER submits are retained for
  /// later await_verdict() calls; their chunk events are dropped.
  validate::Verdict await_verdict(std::uint32_t submit_id);

  /// Blocking convenience: submit + await_verdict.
  validate::Verdict validate(std::uint32_t session_id, std::uint64_t begin = 0,
                             std::uint64_t end = 0);

  /// Releases the server-side session (no acknowledgement).
  void close_session(std::uint32_t session_id);

  /// Polite close: kGoodbye, drain to the server's kBye, return its reason.
  ByeReason goodbye();

  bool connected() const { return socket_.valid(); }

 private:
  explicit ValidationClient(Socket socket) : socket_(std::move(socket)) {}

  /// Reads frames until `expect`, buffering pipelined notifications aside;
  /// kError becomes NetError, kBye/EOF become NetError(kInternal).
  Frame read_sync_response(MsgType expect);
  bool pop_or_read(Event& event);
  static Event translate(const Frame& frame);

  Socket socket_;
  std::uint32_t next_submit_id_ = 1;
  std::deque<Event> buffered_;  ///< notifications read while awaiting sync
  std::unordered_map<std::uint32_t, Event> finished_;  ///< out-of-order ends
  bool saw_bye_ = false;
};

}  // namespace dnnv::net

#endif  // DNNV_NET_CLIENT_H_
