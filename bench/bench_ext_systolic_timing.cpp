// Extension — datasheet-style timing of the two IP models on a systolic
// accelerator, and the cost of replaying a 50-test validation suite.
//
// Emits the standard BENCH schema (--json [family], --baseline,
// --max-regress) like the perf benches. Every metric here is ANALYTIC —
// cycle counts from the closed-form cost model, no wall clocks — so the
// committed baselines are exact and the default regression budget is tight:
// any drift means the cost model or the zoo geometry changed, not noise.
// Every estimate is hard-gated through analysis::verify_systolic_cost
// before it is reported.
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analysis/verifier.h"
#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "ip/systolic.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dnnv;
  const CliArgs args(argc, argv,
                     {"rows", "cols", "paper-scale", "retrain", "tiny",
                      "json", "baseline", "max-regress"});
  bench::banner("bench_ext_systolic_timing",
                "extension — systolic-array cost model for the IP models");

  ip::SystolicConfig config;
  config.rows = args.get_int("rows", 16);
  config.cols = args.get_int("cols", 16);
  std::cout << "array " << config.rows << "x" << config.cols << " @ "
            << config.frequency_mhz << " MHz, "
            << config.memory_bytes_per_cycle << " B/cycle weight memory\n\n";

  auto options = bench::zoo_options(args);
  options.tiny = args.get_bool("tiny", false);
  std::vector<bench::BenchMetric> metrics;
  for (const bool use_cifar : {false, true}) {
    auto trained = use_cifar ? exp::cifar_relu(options) : exp::mnist_tanh(options);
    const auto cost = ip::estimate_cost(trained.model, trained.item_shape, config);
    // The cost model's own invariants (cycles == max(compute, memory),
    // compute never below the MAC-array peak bound, coherent totals) are a
    // correctness gate, not a metric: fail loudly before reporting numbers.
    const auto findings = analysis::verify_systolic_cost(cost, config);
    for (const auto& finding : findings) {
      std::cout << "  " << finding.format() << "\n";
    }
    DNNV_CHECK(!analysis::has_errors(findings),
               trained.name << ": systolic cost estimate violates the timing "
                            << "model's invariants");
    std::cout << trained.name << " (" << cost.total_macs / 1e6 << " MMACs):\n";
    TablePrinter table({"layer", "MACs", "cycles", "bound"});
    for (const auto& layer : cost.layers) {
      if (layer.macs == 0) continue;  // skip elementwise rows for brevity
      table.add_row({layer.name, std::to_string(layer.macs),
                     std::to_string(layer.cycles),
                     layer.memory_bound() ? "memory" : "compute"});
    }
    table.print(std::cout);
    std::cout << "  one inference: " << cost.total_cycles << " cycles = "
              << format_double(cost.latency_us(config), 1) << " us, array utilisation "
              << format_percent(cost.utilization(config)) << "\n";
    const auto replay = ip::suite_replay_cycles(cost, config, 50);
    std::cout << "  50-test validation suite replay: " << replay
              << " cycles = " << format_double(
                     static_cast<double>(replay) / config.frequency_mhz, 1)
              << " us (weights resident after the first test)\n\n";

    metrics.push_back({trained.name + "_total_cycles",
                       static_cast<double>(cost.total_cycles), "cycles",
                       false});
    metrics.push_back({trained.name + "_latency_us", cost.latency_us(config),
                       "us", false});
    metrics.push_back({trained.name + "_utilization_pct",
                       cost.utilization(config) * 100.0, "pct", true});
    metrics.push_back({trained.name + "_replay50_cycles",
                       static_cast<double>(replay), "cycles", false});
  }
  std::cout << "validation cost is microseconds-scale even on a small array — "
               "the paper's premise that users can re-validate on every boot "
               "holds comfortably.\n";

  if (args.has("json")) {
    const std::map<std::string, std::string> json_config = {
        {"rows", std::to_string(config.rows)},
        {"cols", std::to_string(config.cols)},
        {"tiny", options.tiny ? "1" : "0"},
        {"paper_scale", options.paper_scale ? "1" : "0"}};
    bench::write_bench_json(
        bench::resolve_json_out("ext_systolic_timing",
                                args.get_string("json", "")),
        "ext_systolic_timing", json_config, metrics);
  }
  if (args.has("baseline")) {
    // Analytic metrics: the default budget is a hair above zero only to
    // absorb float printing, not measurement noise.
    const double max_regress = args.get_double("max-regress", 0.1);
    const int regressions = bench::diff_against_baseline(
        metrics,
        bench::resolve_baseline_arg("ext_systolic_timing",
                                    args.get_string("baseline", "")),
        max_regress);
    if (regressions > 0) {
      std::cout << regressions << " metric(s) regressed beyond "
                << max_regress << "%\n";
      return 1;
    }
    std::cout << "no regressions beyond " << max_regress << "%\n";
  }
  return 0;
}
