#include "quant/quantize.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace dnnv::quant {

float choose_scale(float amax) {
  return amax > 0.0f ? amax / static_cast<float>(kQmax) : 1.0f;
}

std::int8_t quantize_value(float value, float scale) {
  const long q = std::lround(value / scale);
  return static_cast<std::int8_t>(
      std::clamp<long>(q, kQmin, kQmax));
}

Requant requant_from_real(double r) {
  DNNV_CHECK(r >= 0.0 && std::isfinite(r), "requant ratio " << r);
  if (r == 0.0) return Requant{};
  int exponent = 0;
  const double mantissa = std::frexp(r, &exponent);  // r = mantissa * 2^exp
  auto q31 = static_cast<std::int64_t>(std::lround(mantissa * (1ll << 31)));
  if (q31 == (1ll << 31)) {  // mantissa rounded up to 1.0
    q31 >>= 1;
    ++exponent;
  }
  Requant rq;
  rq.multiplier = static_cast<std::int32_t>(q31);
  rq.shift = 31 - exponent;
  if (rq.shift > 62) {
    // Near-dead channel (ratio < 2^-31): every representable accumulator
    // rescales below one output quantum, so the channel collapses to the
    // zero encoding — same as r == 0, NOT an error (amax==0 maps there too).
    return Requant{};
  }
  DNNV_CHECK(rq.shift >= 0, "requant ratio " << r << " out of fixed-point range");
  return rq;
}

std::int64_t rounding_shift_right(std::int64_t x, std::int32_t shift) {
  if (shift == 0) return x;
  const std::int64_t bias = std::int64_t{1} << (shift - 1);
  // Half-away-from-zero: bias toward the sign of x before truncating shift.
  return x >= 0 ? (x + bias) >> shift : -((-x + bias) >> shift);
}

std::int8_t requantize(std::int32_t acc, const Requant& rq) {
  // |acc| <= 2^31 and multiplier < 2^31, so the product fits int64 exactly.
  const std::int64_t product =
      static_cast<std::int64_t>(acc) * static_cast<std::int64_t>(rq.multiplier);
  const std::int64_t scaled = rounding_shift_right(product, rq.shift);
  return static_cast<std::int8_t>(std::clamp<std::int64_t>(scaled, kQmin, kQmax));
}

float amax_of(const float* values, std::int64_t count) {
  float amax = 0.0f;
  for (std::int64_t i = 0; i < count; ++i) {
    amax = std::max(amax, std::fabs(values[i]));
  }
  return amax;
}

std::vector<float> weight_scales(const float* weights, std::int64_t channels,
                                 std::int64_t per_channel,
                                 Granularity granularity) {
  std::vector<float> scales;
  if (granularity == Granularity::kPerTensor) {
    scales.push_back(choose_scale(amax_of(weights, channels * per_channel)));
    return scales;
  }
  scales.reserve(static_cast<std::size_t>(channels));
  for (std::int64_t c = 0; c < channels; ++c) {
    scales.push_back(choose_scale(amax_of(weights + c * per_channel, per_channel)));
  }
  return scales;
}

}  // namespace dnnv::quant
