// dnnv_pipeline — minimal CLI over the vendor→user pipeline façade.
//
// Vendor side (default): train/load a zoo model, run
// pipeline::VendorPipeline with a registry-named generation method and
// qualification backend, and write the single release deliverable:
//
//   dnnv_pipeline --method combined --backend int8 --tests 50 \
//                 --out deliverable.bin [--model mnist|cifar] [--tiny] \
//                 [--pool 500] [--key 12345]
//
// User side (--in): load a deliverable, reconstruct the deployed device and
// replay the suite; exit 0 = SECURE, 2 = TAMPERED:
//
//   dnnv_pipeline --in deliverable.bin [--key 12345]
//
// --list prints the registered generation methods and exits.
#include <iostream>
#include <string>

#include "exp/model_zoo.h"
#include "pipeline/user.h"
#include "pipeline/vendor.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/table.h"

namespace {

using namespace dnnv;

int run_vendor(const CliArgs& args) {
  const std::string which = args.get_string("model", "cifar");
  const std::string out = args.get_string("out", "deliverable.bin");
  const auto key = static_cast<std::uint64_t>(args.get_int("key", 12345));

  exp::ZooOptions zoo;
  zoo.tiny = args.get_bool("tiny", false);
  zoo.verbose = true;
  auto trained =
      which == "mnist" ? exp::mnist_tanh(zoo) : exp::cifar_relu(zoo);
  const auto pool_size = static_cast<std::int64_t>(args.get_int("pool", 300));
  const auto pool = which == "mnist" ? exp::digits_train(pool_size)
                                     : exp::shapes_train(pool_size);

  pipeline::VendorOptions options;
  options.method = args.get_string("method", "combined");
  options.backend = args.get_string("backend", "float");
  options.num_tests = args.get_int("tests", 50);
  options.generator.coverage = trained.coverage;
  options.generator.gradient.steps = args.get_int("steps", 40);
  options.model_name = trained.name;

  std::cout << "vendor: " << trained.name << ", method '" << options.method
            << "', backend '" << options.backend << "', " << options.num_tests
            << " tests\n";
  pipeline::VendorReport report;
  const auto deliverable =
      pipeline::VendorPipeline(options).run(trained.model, trained.item_shape,
                                            trained.num_classes, pool.images,
                                            &report);
  deliverable.save_file(out, key);
  std::cout << "coverage " << format_percent(report.coverage);
  if (report.backend_float_agreement >= 0) {
    std::cout << ", int8/float golden agreement " << report.backend_float_agreement
              << "/" << report.generation.tests.size();
  }
  std::cout << "\nwrote " << out << " (" << deliverable.manifest.summary()
            << ")\n";
  return 0;
}

int run_user(const CliArgs& args) {
  const std::string in = args.get_string("in", "deliverable.bin");
  const auto key = static_cast<std::uint64_t>(args.get_int("key", 12345));
  const auto validator = pipeline::UserValidator::load_file(in, key);
  std::cout << "loaded " << in << " ("
            << validator.deliverable().manifest.summary() << ")\n";
  const auto verdict = validator.validate();
  std::cout << "replayed " << verdict.tests_run << " tests: "
            << (verdict.passed ? "SECURE" : "TAMPERED") << "\n";
  return verdict.passed ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv,
                       {"method", "backend", "tests", "out", "in", "model",
                        "tiny", "pool", "key", "steps", "list"});
    if (args.get_bool("list", false)) {
      std::cout << "registered generation methods:\n";
      for (const auto& name : testgen::generator_names()) {
        std::cout << "  " << name << "\n";
      }
      return 0;
    }
    return args.has("in") ? run_user(args) : run_vendor(args);
  } catch (const dnnv::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
