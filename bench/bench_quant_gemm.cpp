// Int8 vs float GEMM throughput — the quantized engine's speed claim.
//
// Measures the blocked int8 x int8 -> int32 kernel (quant::qgemm) against
// the float blocked kernel (dnnv::gemm) and the frozen seed kernel at
// square sizes, on one core (the shared pool still parallelises large
// shapes identically for both, so the ratio is apples-to-apples). Also
// cross-checks the int8 result against a naive reference on a subsample —
// a throughput number from a wrong kernel is worthless.
//
// Usage: ./build/bench_quant_gemm [--sizes 128,256,384] [--reps 10]
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench/bench_common.h"
#include "quant/qgemm.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace dnnv;

double gops(std::int64_t n, double seconds, int reps) {
  return 2.0 * static_cast<double>(n) * static_cast<double>(n) *
         static_cast<double>(n) * reps / seconds / 1e9;
}

/// Spot-check a few int8 results against naive accumulation.
bool verify_qgemm(std::int64_t n, const std::vector<std::int8_t>& a,
                  const std::vector<std::int8_t>& b,
                  const std::vector<std::int32_t>& c) {
  Rng rng(99);
  for (int probe = 0; probe < 64; ++probe) {
    const auto i = static_cast<std::int64_t>(rng.uniform_u64(
        static_cast<std::uint64_t>(n)));
    const auto j = static_cast<std::int64_t>(rng.uniform_u64(
        static_cast<std::uint64_t>(n)));
    std::int32_t acc = 0;
    for (std::int64_t p = 0; p < n; ++p) {
      acc += static_cast<std::int32_t>(a[static_cast<std::size_t>(i * n + p)]) *
             static_cast<std::int32_t>(b[static_cast<std::size_t>(p * n + j)]);
    }
    if (acc != c[static_cast<std::size_t>(i * n + j)]) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv, {"sizes", "reps"});
  bench::banner("bench_quant_gemm",
                "int8 quantized MAC datapath vs float engine (GEMM core)");
  std::cout << "int8 micro-kernel: " << quant::qgemm_kernel_name() << "\n\n";

  std::vector<std::int64_t> sizes = {128, 256, 384};
  if (const std::string s = args.get_string("sizes", ""); !s.empty()) {
    sizes.clear();
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) sizes.push_back(std::atoll(item.c_str()));
  }
  const int default_reps = args.get_int("reps", 0);

  bool all_ok = true;
  for (const std::int64_t n : sizes) {
    const int reps = default_reps > 0 ? default_reps : (n <= 128 ? 40 : 10);
    Rng rng(1);
    const Tensor fa = Tensor::randn(Shape{n, n}, rng);
    const Tensor fb = Tensor::randn(Shape{n, n}, rng);
    Tensor fc(Shape{n, n});
    const auto qa = bench::random_int8_codes(n * n, rng);
    const auto qb = bench::random_int8_codes(n * n, rng);
    std::vector<std::int32_t> qc(static_cast<std::size_t>(n * n));

    set_gemm_kernel(GemmKernel::kReference);
    Stopwatch timer;
    for (int r = 0; r < reps; ++r) {
      gemm(false, false, n, n, n, 1.0f, fa.data(), fb.data(), 0.0f, fc.data());
    }
    const double seed_s = timer.elapsed_seconds();

    set_gemm_kernel(GemmKernel::kBlocked);
    timer.reset();
    for (int r = 0; r < reps; ++r) {
      gemm(false, false, n, n, n, 1.0f, fa.data(), fb.data(), 0.0f, fc.data());
    }
    const double float_s = timer.elapsed_seconds();

    quant::qgemm(n, n, n, qa.data(), qb.data(), qc.data());  // warmup
    timer.reset();
    for (int r = 0; r < reps; ++r) {
      quant::qgemm(n, n, n, qa.data(), qb.data(), qc.data());
    }
    const double int8_s = timer.elapsed_seconds();
    const bool ok = verify_qgemm(n, qa, qb, qc);
    all_ok = all_ok && ok;

    std::cout << "  n=" << n << ": seed " << gops(n, seed_s, reps)
              << " GFLOP/s, float blocked " << gops(n, float_s, reps)
              << " GFLOP/s, int8 " << gops(n, int8_s, reps)
              << " GOP/s  |  int8 vs float " << float_s / int8_s
              << "x, int8 vs seed " << seed_s / int8_s << "x"
              << (ok ? "" : "  [VERIFY FAILED]") << "\n";
  }
  if (!all_ok) {
    std::cerr << "int8 kernel verification FAILED\n";
    return 1;
  }
  return 0;
}
