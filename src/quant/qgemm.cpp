#include "quant/qgemm.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <sstream>
#include <vector>

#include "quant/qgemm_panels.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace dnnv::quant {
namespace {

using namespace detail;

// Signedness: vpdpbusd multiplies UNSIGNED a-bytes by signed b-bytes. A is
// therefore packed with a +128 offset (s8 XOR 0x80), and the per-column sums
// of B collected during packing undo it exactly:
//   sum_k (a+128)*b = sum_k a*b + 128 * colsum(b).
// Everything stays in exact int32 (see the overflow contract in the header),
// so the scalar kernel — which skips the offset (and colsum) entirely —
// produces bit-identical results.

std::atomic<QGemmKernel> g_kernel{QGemmKernel::kAuto};

QGemmKernel resolve(QGemmKernel k) {
  if (k != QGemmKernel::kAuto) return k;
  return qgemm_vnni_available() ? QGemmKernel::kVnni : QGemmKernel::kScalar;
}

// Per-thread packing arenas: resized in place, so a warmed-up thread packs
// with zero allocations. Thread-local (not per-call) because concurrent
// GEMMs on different threads must not share pack storage.
std::vector<std::uint8_t>& a_pack_buffer() {
  static thread_local std::vector<std::uint8_t> buf;
  return buf;
}

std::vector<std::int8_t>& b_pack_buffer() {
  static thread_local std::vector<std::int8_t> buf;
  return buf;
}

std::vector<std::int32_t>& colsum_buffer() {
  static thread_local std::vector<std::int32_t> buf;
  return buf;
}

// Tile parallelism pays for itself only past this many int8 MACs.
constexpr std::int64_t kParallelMinWork = std::int64_t{1} << 20;

template <bool Vnni>
void qgemm_impl(std::int64_t m, std::int64_t n, std::int64_t k,
                const std::int8_t* a, const std::int8_t* b, std::int32_t* c,
                const QGemmOptions& options) {
  const std::int64_t kc_max = std::min(k, kKC);
  std::vector<std::uint8_t>& a_pack = a_pack_buffer();
  a_pack.resize(packed_a_slice_bytes(m, kc_max));
  std::vector<std::int8_t>& b_pack = b_pack_buffer();
  b_pack.resize(packed_b_slice_bytes(n, kc_max));
  const std::int64_t n_pad = (n + kNR - 1) / kNR * kNR;
  std::vector<std::int32_t>& colsum = colsum_buffer();
  colsum.assign(static_cast<std::size_t>(n_pad), 0);  // tail lanes stay 0

  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::shared();
  const std::int64_t num_ic = (m + kMC - 1) / kMC;
  const std::int64_t num_jc = (n + kNC - 1) / kNC;
  const std::int64_t num_tiles = num_ic * num_jc;
  const bool parallel = !options.force_serial && pool.num_threads() > 1 &&
                        num_tiles > 1 && m * n * k >= kParallelMinWork;

  for (std::int64_t pc = 0; pc < k; pc += kKC) {
    const std::int64_t kc = std::min(kKC, k - pc);
    const std::int64_t kc4 = quads(kc);
    pack_a<Vnni>(a, k, 0, pc, m, kc, a_pack.data());
    pack_b_rows<Vnni>(
        kc, n, [&](std::int64_t p) { return b + (pc + p) * n; }, b_pack.data(),
        colsum.data());

    auto tile = [&](std::size_t ti) {
      const std::int64_t ic = (static_cast<std::int64_t>(ti) / num_jc) * kMC;
      const std::int64_t jc = (static_cast<std::int64_t>(ti) % num_jc) * kNC;
      const std::int64_t mc = std::min(kMC, m - ic);
      const std::int64_t nc = std::min(kNC, n - jc);
      macro_block<Vnni>(mc, nc, kc, a_pack.data() + (ic / kMR) * kc4 * kMR * 4,
                        b_pack.data() + (jc / kNR) * kc4 * kNR * 4,
                        colsum.data() + jc, c + ic * n + jc, n);
    };
    if (parallel) {
      pool.parallel_for(static_cast<std::size_t>(num_tiles), tile);
    } else {
      for (std::int64_t ti = 0; ti < num_tiles; ++ti) {
        tile(static_cast<std::size_t>(ti));
      }
    }
  }
}

}  // namespace

void set_qgemm_kernel(QGemmKernel kernel) {
  DNNV_CHECK(kernel != QGemmKernel::kVnni || qgemm_vnni_available(),
             "VNNI qgemm kernel requested but not compiled in");
  g_kernel.store(kernel, std::memory_order_relaxed);
}

QGemmKernel qgemm_kernel() {
  return resolve(g_kernel.load(std::memory_order_relaxed));
}

bool qgemm_vnni_available() { return DNNV_QGEMM_VNNI != 0; }

void qgemm(std::int64_t m, std::int64_t n, std::int64_t k, const std::int8_t* a,
           const std::int8_t* b, std::int32_t* c,
           const QGemmOptions& options) {
  DNNV_CHECK(m >= 0 && n >= 0 && k >= 0, "negative qgemm dims");
  DNNV_CHECK(k <= 65536, "qgemm K " << k << " exceeds the int32 overflow bound");
  std::fill(c, c + m * n, 0);
  if (m == 0 || n == 0 || k == 0) return;
#if DNNV_QGEMM_VNNI
  if (qgemm_kernel() == QGemmKernel::kVnni) {
    qgemm_impl<true>(m, n, k, a, b, c, options);
    return;
  }
#endif
  qgemm_impl<false>(m, n, k, a, b, c, options);
}

void qgemm(std::int64_t m, std::int64_t n, std::int64_t k, const std::int8_t* a,
           const std::int8_t* b, std::int32_t* c) {
  qgemm(m, n, k, a, b, c, QGemmOptions{});
}

const char* qgemm_kernel_name() {
  return qgemm_kernel() == QGemmKernel::kVnni ? "avx512-vnni" : "scalar";
}

std::string qgemm_config_string() {
  std::ostringstream os;
  os << "kernel=" << qgemm_kernel_name() << " vnni_available="
     << (qgemm_vnni_available() ? 1 : 0) << " mr=" << detail::kMR
     << " nr=" << detail::kNR << " mc=" << detail::kMC << " kc=" << detail::kKC
     << " nc=" << detail::kNC << " threads=" << ThreadPool::shared().num_threads()
     << " nesting=work-split";
  return os.str();
}

}  // namespace dnnv::quant
