// Fig 3 — validation coverage vs number of functional tests for the three
// generation methods (training-set selection / gradient synthesis / combined)
// plus a random-selection control, on the CIFAR model.
//
// Paper shape: selection is best early (20 tests ≈ 82%) but saturates (the
// whole training set leaves ~8% never activated); gradient synthesis starts
// lower but keeps climbing; the combined method dominates (30 tests ≈ 92%).
//
// All methods run through the generator registry against one shared pool
// mask pass (testgen::make_generator + GenContext.masks).
//
//   ./build/bench_fig3_methods [--pool 400] [--budget 60] [--model both]
//                              [--quick] [--json [path|family]]
//                              [--baseline path] [--max-regress pct]
//
// --quick shrinks to a CI-smoke footprint; --json/--baseline emit and gate
// the coverage-at-checkpoint series (deterministic under the fixed seed).
#include <iostream>
#include <map>

#include "bench/bench_common.h"
#include "bench/bench_json.h"
#include "coverage/parameter_coverage.h"
#include "testgen/generator.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace {

using namespace dnnv;

/// Coverage value after `n` tests from a trajectory (coverage_after).
std::string at(const testgen::GenerationResult& result, int n) {
  if (result.coverage_after.empty()) return "-";
  const std::size_t idx =
      std::min<std::size_t>(static_cast<std::size_t>(n), result.coverage_after.size()) - 1;
  return format_percent(result.coverage_after[idx]);
}

/// The compared methods, by registry name (Fig 3's four curves).
struct MethodRow {
  const char* method;       ///< testgen registry name
  const char* timer_label;  ///< progress line (nullptr = untimed control)
  const char* column;       ///< table header
};
constexpr MethodRow kMethods[] = {
    {"greedy", "Algorithm 1 (training-set selection): ", "Alg 1 (select)"},
    {"gradient", "Algorithm 2 (gradient synthesis):     ", "Alg 2 (gradient)"},
    {"combined", "Combined method:                      ", "Combined"},
    {"random", nullptr, "Random control"},
};

/// Numeric coverage after `n` tests, for the metric series.
double coverage_at(const testgen::GenerationResult& result, int n) {
  if (result.coverage_after.empty()) return 0.0;
  const std::size_t idx =
      std::min<std::size_t>(static_cast<std::size_t>(n),
                            result.coverage_after.size()) -
      1;
  return result.coverage_after[idx];
}

int run_for_model(const std::string& which, std::int64_t pool_size, int budget,
                  const exp::ZooOptions& options,
                  std::vector<bench::BenchMetric>& metrics) {
  auto trained = which == "mnist" ? exp::mnist_tanh(options)
                                  : exp::cifar_relu(options);
  const auto pool = which == "mnist" ? exp::digits_train(pool_size)
                                     : exp::shapes_train(pool_size);
  const auto universe = static_cast<std::size_t>(trained.model.param_count());
  std::cout << "model: " << trained.name << ", candidate pool: " << pool_size
            << " training samples, budget: " << budget << " tests\n\n";

  Stopwatch timer;
  std::cout << "computing pool activation masks (parallel)...\n";
  const auto masks =
      cov::activation_masks(trained.model, pool.images, trained.coverage);
  std::cout << "  done in " << timer.elapsed_seconds() << "s\n";

  // Shared config; every method draws the knobs it understands.
  testgen::GeneratorConfig config;
  config.max_tests = budget;
  config.coverage = trained.coverage;
  config.gradient.steps = 60;
  config.random_seed = 17;

  testgen::GenContext ctx;
  ctx.model = &trained.model;
  ctx.pool = &pool.images;
  ctx.masks = &masks;
  ctx.item_shape = trained.item_shape;
  ctx.num_classes = trained.num_classes;

  std::vector<testgen::GenerationResult> results;
  for (const MethodRow& row : kMethods) {
    timer.reset();
    cov::CoverageAccumulator accumulator(universe);
    ctx.accumulator = &accumulator;
    results.push_back(testgen::make_generator(row.method, config)->generate(ctx));
    if (row.timer_label != nullptr) {
      std::cout << row.timer_label << timer.elapsed_seconds() << "s\n";
    }
  }

  // Whole-pool ceiling: how much the entire candidate set can ever activate
  // (paper: ~8% of CIFAR parameters are never activated by the training set).
  cov::CoverageAccumulator ceiling(universe);
  for (const auto& mask : masks) ceiling.add(mask);

  std::cout << "\n";
  std::vector<std::string> headers = {"#tests"};
  for (const MethodRow& row : kMethods) headers.push_back(row.column);
  TablePrinter table(std::move(headers));
  for (const int n : {1, 5, 10, 20, 30, 40, 50, 80, 120}) {
    if (n > budget) break;
    std::vector<std::string> cells = {std::to_string(n)};
    for (const auto& result : results) cells.push_back(at(result, n));
    table.add_row(std::move(cells));
    for (std::size_t m = 0; m < std::size(kMethods); ++m) {
      metrics.push_back({which + "_" + kMethods[m].method + "_cov_at_" +
                             std::to_string(n),
                         coverage_at(results[m], n), "frac", true});
    }
  }
  table.print(std::cout);
  metrics.push_back({which + "_pool_ceiling", ceiling.coverage(), "frac",
                     true});

  std::cout << "\nwhole-pool ceiling (" << pool_size
            << " samples): " << format_percent(ceiling.coverage())
            << "  -> never activated by the candidate set: "
            << format_percent(1.0 - ceiling.coverage())
            << " (paper: ~8% for the full CIFAR training set)\n";
  int synthetic = 0;
  std::size_t combined_tests = 0;
  for (std::size_t m = 0; m < std::size(kMethods); ++m) {
    if (std::string(kMethods[m].method) != "combined") continue;
    combined_tests = results[m].tests.size();
    for (const auto& test : results[m].tests) {
      if (test.source == testgen::TestSource::kSynthetic) ++synthetic;
    }
  }
  std::cout << "combined method switch profile: "
            << (static_cast<int>(combined_tests) - synthetic)
            << " training samples, then " << synthetic << " synthetic tests\n";
  std::cout << "paper reference points (CIFAR): Alg1 20->82%, Alg2 10->66%, "
               "combined 30->92%\n";
  if (which != "mnist") {
    std::cout << "NOTE (ReLU model): parameters behind permanently-dead ReLU "
                 "units are unreachable by ANY input in this scaled-down "
                 "substrate (see EXPERIMENTS.md), which caps all methods at "
                 "the same ceiling; the Tanh model below shows the full "
                 "crossover dynamics.\n";
  }
  std::cout << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"pool", "budget", "model", "paper-scale", "retrain",
                      "quick", "json", "baseline", "max-regress"});
  const bool quick = args.get_bool("quick", false);
  const auto pool_size =
      static_cast<std::int64_t>(args.get_int("pool", quick ? 60 : 400));
  const int budget = args.get_int("budget", quick ? 20 : 60);
  const std::string which = args.get_string("model", "both");
  bench::banner("bench_fig3_methods",
                "Fig 3 — coverage vs #tests: selection / gradient / combined");
  auto options = bench::zoo_options(args);
  if (quick) options.tiny = true;

  std::vector<bench::BenchMetric> metrics;
  int rc = 0;
  if (which == "both") {
    rc |= run_for_model("cifar", pool_size, budget, options, metrics);
    rc |= run_for_model("mnist", pool_size, budget, options, metrics);
  } else {
    rc = run_for_model(which, pool_size, budget, options, metrics);
  }

  if (args.has("json")) {
    const std::string path =
        bench::resolve_json_out("fig3_methods", args.get_string("json", ""));
    std::map<std::string, std::string> config;
    config["quick"] = quick ? "1" : "0";
    config["pool"] = std::to_string(pool_size);
    config["budget"] = std::to_string(budget);
    config["model"] = which;
    bench::write_bench_json(path, "fig3_methods", config, metrics);
  }
  if (args.has("baseline")) {
    const std::string baseline = bench::resolve_baseline_arg(
        "fig3_methods", args.get_string("baseline", ""));
    const double max_regress = args.get_double("max-regress", 10.0);
    std::cout << "\ndiff vs " << baseline << " (max regression " << max_regress
              << "%):\n";
    const int regressions =
        bench::diff_against_baseline(metrics, baseline, max_regress);
    if (regressions > 0) {
      std::cerr << regressions << " metric(s) regressed beyond " << max_regress
                << "%\n";
      return 1;
    }
  }
  return rc;
}
