#include "tensor/im2col.h"

#include <algorithm>
#include <cstring>

#include "tensor/gemm.h"
#include "util/error.h"

namespace dnnv {
namespace {

/// The stride-1 memcpy/vector-add fast paths are part of the blocked engine;
/// the reference engine (benchmark baseline) keeps the seed's branchy loops.
bool use_fast_paths() { return gemm_kernel() == GemmKernel::kBlocked; }

}  // namespace

std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel,
                          std::int64_t stride, std::int64_t pad) {
  DNNV_CHECK(stride > 0, "stride must be positive");
  const std::int64_t eff = in + 2 * pad - kernel;
  DNNV_CHECK(eff >= 0, "kernel " << kernel << " larger than padded input "
                                 << in + 2 * pad);
  return eff / stride + 1;
}

void im2col(const float* image, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* columns) {
  const std::int64_t out_h = conv_out_dim(height, kh, stride, pad);
  const std::int64_t out_w = conv_out_dim(width, kw, stride, pad);
  const std::int64_t out_plane = out_h * out_w;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < channels; ++c) {
    const float* plane = image + c * height * width;
    for (std::int64_t ky = 0; ky < kh; ++ky) {
      for (std::int64_t kx = 0; kx < kw; ++kx, ++row) {
        float* out_row = columns + row * out_plane;
        // Stride-1 fast path: each output row is a contiguous slice of the
        // image row framed by zero padding — one memcpy instead of a branch
        // per element (im2col is bandwidth-bound and sits next to the GEMM
        // on the conv hot path).
        if (stride == 1 && use_fast_paths()) {
          const std::int64_t x0 = std::max<std::int64_t>(0, pad - kx);
          const std::int64_t x1 =
              std::min<std::int64_t>(out_w, width + pad - kx);
          for (std::int64_t oy = 0; oy < out_h; ++oy) {
            float* dst = out_row + oy * out_w;
            const std::int64_t iy = oy - pad + ky;
            if (iy < 0 || iy >= height || x0 >= x1) {
              std::memset(dst, 0, static_cast<std::size_t>(out_w) * sizeof(float));
              continue;
            }
            if (x0 > 0) std::memset(dst, 0, static_cast<std::size_t>(x0) * sizeof(float));
            std::memcpy(dst + x0, plane + iy * width + (x0 - pad + kx),
                        static_cast<std::size_t>(x1 - x0) * sizeof(float));
            if (x1 < out_w) {
              std::memset(dst + x1, 0,
                          static_cast<std::size_t>(out_w - x1) * sizeof(float));
            }
          }
          continue;
        }
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * stride - pad + ky;
          if (iy < 0 || iy >= height) {
            for (std::int64_t ox = 0; ox < out_w; ++ox) out_row[oy * out_w + ox] = 0.0f;
            continue;
          }
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * stride - pad + kx;
            out_row[oy * out_w + ox] =
                (ix < 0 || ix >= width) ? 0.0f : plane[iy * width + ix];
          }
        }
      }
    }
  }
}

void col2im(const float* columns, std::int64_t channels, std::int64_t height,
            std::int64_t width, std::int64_t kh, std::int64_t kw,
            std::int64_t stride, std::int64_t pad, float* image) {
  const std::int64_t out_h = conv_out_dim(height, kh, stride, pad);
  const std::int64_t out_w = conv_out_dim(width, kw, stride, pad);
  const std::int64_t out_plane = out_h * out_w;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < channels; ++c) {
    float* plane = image + c * height * width;
    for (std::int64_t ky = 0; ky < kh; ++ky) {
      for (std::int64_t kx = 0; kx < kw; ++kx, ++row) {
        const float* in_row = columns + row * out_plane;
        // Stride-1 fast path: the valid span is contiguous, so the scatter
        // becomes a branch-free vector add (mirrors the im2col fast path).
        if (stride == 1 && use_fast_paths()) {
          const std::int64_t x0 = std::max<std::int64_t>(0, pad - kx);
          const std::int64_t x1 =
              std::min<std::int64_t>(out_w, width + pad - kx);
          for (std::int64_t oy = 0; oy < out_h; ++oy) {
            const std::int64_t iy = oy - pad + ky;
            if (iy < 0 || iy >= height || x0 >= x1) continue;
            float* dst = plane + iy * width + (x0 - pad + kx);
            const float* src = in_row + oy * out_w + x0;
            const std::int64_t len = x1 - x0;
            for (std::int64_t i = 0; i < len; ++i) dst[i] += src[i];
          }
          continue;
        }
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * stride - pad + ky;
          if (iy < 0 || iy >= height) continue;
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * stride - pad + kx;
            if (ix < 0 || ix >= width) continue;
            plane[iy * width + ix] += in_row[oy * out_w + ox];
          }
        }
      }
    }
  }
}

}  // namespace dnnv
