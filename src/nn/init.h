// Weight initialisation schemes.
#ifndef DNNV_NN_INIT_H_
#define DNNV_NN_INIT_H_

#include "nn/activation.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace dnnv::nn {

/// Initialisation scheme for weight tensors.
enum class InitKind {
  kKaimingNormal,  ///< N(0, sqrt(2/fan_in)) — suited to ReLU family
  kXavierNormal,   ///< N(0, sqrt(2/(fan_in+fan_out))) — suited to Tanh/Sigmoid
  kZero,
};

/// Picks the conventional scheme for an activation kind.
InitKind default_init_for(ActivationKind kind);

/// Fills `weights` in place according to `kind`.
void initialize_weights(Tensor& weights, InitKind kind, std::int64_t fan_in,
                        std::int64_t fan_out, Rng& rng);

}  // namespace dnnv::nn

#endif  // DNNV_NN_INIT_H_
