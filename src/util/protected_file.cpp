#include "util/protected_file.h"

#include <utility>

#include "util/crc32.h"
#include "util/error.h"
#include "util/keystream.h"
#include "util/serialize.h"

namespace dnnv {

void write_protected_file(const std::string& path,
                          std::vector<std::uint8_t> payload, std::uint64_t key,
                          std::uint32_t magic, std::uint32_t version,
                          const char* what) {
  DNNV_CHECK(!payload.empty(), "refusing to write an empty " << what);
  keystream_xor(payload, key);

  ByteWriter file;
  file.write_u32(magic);
  file.write_u32(version);
  file.write_u32(crc32(payload));
  file.write_u64(payload.size());
  file.write_bytes(payload.data(), payload.size());
  write_file(path, file.bytes());
}

std::vector<std::uint8_t> read_protected_file(const std::string& path,
                                              std::uint64_t key,
                                              std::uint32_t magic,
                                              std::uint32_t version,
                                              const char* what) {
  // Each failure mode gets its own diagnostic — "bad magic", "unsupported
  // version", "short read", "bad CRC" — so a user qualifying a shipment can
  // tell a wrong file from a truncated download from in-transit corruption.
  ByteReader file(read_file(path));
  constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 8;
  if (file.remaining() < kHeaderBytes) {
    DNNV_THROW("short read: " << what << " file '" << path << "' holds "
                              << file.remaining()
                              << " bytes, smaller than the " << kHeaderBytes
                              << "-byte header");
  }
  const std::uint32_t found_magic = file.read_u32();
  if (found_magic != magic) {
    DNNV_THROW("bad magic: '" << path << "' is not a dnnv " << what
                              << " (found 0x" << std::hex << found_magic
                              << ", expected 0x" << magic << ")");
  }
  const std::uint32_t found_version = file.read_u32();
  if (found_version != version) {
    DNNV_THROW("unsupported " << what << " version " << found_version
                              << " (this build reads version " << version
                              << ")");
  }
  const std::uint32_t expected_crc = file.read_u32();
  const std::uint64_t cipher_size = file.read_u64();
  if (cipher_size != file.remaining()) {
    DNNV_THROW("short read: " << what << " payload declares " << cipher_size
                              << " bytes but " << file.remaining()
                              << " remain (truncated or overlong file)");
  }
  std::vector<std::uint8_t> cipher =
      file.read_bytes(static_cast<std::size_t>(cipher_size));
  if (crc32(cipher) != expected_crc) {
    DNNV_THROW("bad CRC: " << what
                           << " payload failed its integrity check "
                              "(corrupted in transit?)");
  }
  keystream_xor(cipher, key);
  return cipher;
}

}  // namespace dnnv
