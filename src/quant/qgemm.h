// Blocked int8 x int8 -> int32 GEMM — the quantized engine's MAC datapath.
#ifndef DNNV_QUANT_QGEMM_H_
#define DNNV_QUANT_QGEMM_H_

#include <cstdint>

namespace dnnv::quant {

/// C[M,N] (int32) = A[M,K] (int8) * B[K,N] (int8), all row-major, C
/// overwritten. Same cache-blocking/packing/threading structure as the float
/// dnnv::gemm (macro-tiles over packed micro-panels, M-dimension parallelism
/// over ThreadPool::shared(), serial when nested in a pool worker). K is
/// processed in quads so the micro-kernel maps onto AVX-512 VNNI vpdpbusd
/// when available (int8 operands, exact int32 accumulation — no float, no
/// saturating intermediates); the portable fallback runs the identical exact
/// integer arithmetic, so results are bit-identical across kernels, batch
/// sizes and thread counts by construction.
///
/// Overflow contract: k <= 65536 (checked), which keeps the unsigned-offset
/// accumulation below 2^31 in the worst case.
void qgemm(std::int64_t m, std::int64_t n, std::int64_t k, const std::int8_t* a,
           const std::int8_t* b, std::int32_t* c);

/// Name of the compiled-in micro-kernel ("avx512-vnni" or "scalar") — benches
/// report it so throughput numbers are interpretable.
const char* qgemm_kernel_name();

}  // namespace dnnv::quant

#endif  // DNNV_QUANT_QGEMM_H_
