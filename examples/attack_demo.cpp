// Attack demo — the threat model in action: craft SBA and GDA perturbations
// against a trained model (Liu et al., ICCAD 2017), show what they do to the
// victim input and to overall accuracy, and how many functional tests are
// needed to expose each.
//
// Usage: ./build/examples/attack_demo [--model mnist|cifar]
#include <iostream>

#include "attack/gda.h"
#include "attack/random_perturbation.h"
#include "attack/sba.h"
#include "coverage/parameter_coverage.h"
#include "exp/model_zoo.h"
#include "ip/reference_ip.h"
#include "nn/trainer.h"
#include "testgen/generator.h"
#include "util/cli.h"
#include "util/table.h"
#include "validate/test_suite.h"
#include "validate/validator.h"

int main(int argc, char** argv) {
  using namespace dnnv;
  const CliArgs args(argc, argv, {"model"});
  const std::string which = args.get_string("model", "mnist");

  exp::ZooOptions options;
  options.verbose = true;
  auto trained =
      which == "mnist" ? exp::mnist_tanh(options) : exp::cifar_relu(options);
  auto test_data = which == "mnist" ? exp::digits_test(400) : exp::shapes_test(400);
  auto pool = which == "mnist" ? exp::digits_train(400) : exp::shapes_train(400);

  std::cout << "=== fault-injection attacks on " << trained.name << " ===\n";
  const double clean_accuracy = nn::evaluate_accuracy(
      trained.model, test_data.images, test_data.labels);
  std::cout << "clean test accuracy: " << format_percent(clean_accuracy) << "\n\n";

  // Functional-test suite for detection checks.
  cov::CoverageAccumulator acc(
      static_cast<std::size_t>(trained.model.param_count()));
  testgen::GeneratorConfig gen_config;
  gen_config.max_tests = 50;
  gen_config.coverage = trained.coverage;
  gen_config.gradient.steps = 50;
  testgen::GenContext gen_ctx;
  gen_ctx.model = &trained.model;
  gen_ctx.pool = &pool.images;
  gen_ctx.item_shape = trained.item_shape;
  gen_ctx.num_classes = trained.num_classes;
  gen_ctx.accumulator = &acc;
  const auto tests =
      testgen::make_generator("combined", gen_config)->generate(gen_ctx);
  auto suite = validate::TestSuite::create(trained.model, tests.tests);

  attack::SingleBiasAttack sba;
  attack::GradientDescentAttack gda;
  attack::RandomPerturbation random_attack;

  TablePrinter table({"attack", "params changed", "max |delta|",
                      "victim flipped", "accuracy after", "first detecting test"});
  Rng rng(99);
  for (const attack::Attack* atk :
       {static_cast<const attack::Attack*>(&sba),
        static_cast<const attack::Attack*>(&gda),
        static_cast<const attack::Attack*>(&random_attack)}) {
    // Find a victim that the attack can compromise.
    attack::Perturbation payload;
    int victim_label_before = -1;
    int victim_label_after = -1;
    for (std::size_t v = 0; v < pool.images.size() && payload.empty(); ++v) {
      payload = atk->craft(trained.model, pool.images[v], rng);
      if (!payload.empty()) {
        victim_label_before = trained.model.predict_label(pool.images[v]);
        payload.apply(trained.model);
        victim_label_after = trained.model.predict_label(pool.images[v]);
        payload.revert(trained.model);
      }
    }
    if (payload.empty()) {
      table.add_row({atk->name(), "-", "-", "craft failed", "-", "-"});
      continue;
    }
    payload.apply(trained.model);
    const double attacked_accuracy = nn::evaluate_accuracy(
        trained.model, test_data.images, test_data.labels);
    // Which functional test exposes the perturbation first?
    ip::ReferenceIp ip(trained.model, trained.item_shape);
    const auto verdict = validate::validate_ip(ip, suite);
    payload.revert(trained.model);

    table.add_row(
        {atk->name(), std::to_string(payload.deltas.size()),
         format_double(payload.max_magnitude(), 3),
         std::to_string(victim_label_before) + " -> " +
             std::to_string(victim_label_after),
         format_percent(attacked_accuracy),
         verdict.passed ? "UNDETECTED" : "#" + std::to_string(verdict.first_failure)});
  }
  table.print(std::cout);
  std::cout << "\nnote how GDA stays stealthy (small deltas, accuracy barely "
               "moves) yet the parameter-coverage tests still catch it.\n";
  return 0;
}
