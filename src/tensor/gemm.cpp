#include "tensor/gemm.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"
#include "util/thread_pool.h"

namespace dnnv {
namespace {

// Cache-blocked GEMM (BLIS-style): C is computed in kMC x kNC macro-tiles,
// accumulating over kKC-deep slices of A and B that are repacked into
// contiguous micro-panels. The micro-kernel keeps a kMR x kNR accumulator
// tile in registers, so the inner loop is branchless FMA streams over packed
// panels (no per-element zero-skip — it would break vectorisation).
//
// Determinism contract (the coverage engine depends on it): every C element
// is owned by exactly one thread and accumulates its k-products in ascending
// p order within fixed kKC blocks. The blocking of K and N never depends on
// M, so a row's result is bit-identical whether it is computed alone (batch
// of one) or inside a large batch — this is what makes the batched coverage
// pipeline bit-compatible with the per-item path.
constexpr std::int64_t kMR = 8;    // micro-tile rows
constexpr std::int64_t kNR = 32;   // micro-tile cols (4 AVX2 / 2 AVX-512 regs)
constexpr std::int64_t kMC = 64;   // rows of A per macro-block (parallel unit)
constexpr std::int64_t kKC = 256;  // K-slice depth (packed panels stay in L1/L2)
constexpr std::int64_t kNC = 512;  // cols of B per packed panel

/// Reads element (row, col) of op(X) where X is stored row-major
/// [rows, cols] when transposed == false, or [cols, rows] when true.
inline float op_at(const float* x, std::int64_t ld, bool transposed,
                   std::int64_t row, std::int64_t col) {
  return transposed ? x[col * ld + row] : x[row * ld + col];
}

/// Packs op(A)[ic..ic+mc, pc..pc+kc] into kMR-row micro-panels:
/// dst[panel][p * kMR + r], zero-padded to a whole number of panels. The
/// transpose (and optional absolute value — the sensitivity pipeline's |W|)
/// are absorbed here instead of materialising transformed copies of op(A).
void pack_a(const float* a, std::int64_t lda, bool trans_a, bool abs_a,
            std::int64_t ic, std::int64_t pc, std::int64_t mc, std::int64_t kc,
            float alpha, float* dst) {
  for (std::int64_t ir = 0; ir < mc; ir += kMR) {
    const std::int64_t rows = std::min(kMR, mc - ir);
    for (std::int64_t p = 0; p < kc; ++p) {
      for (std::int64_t r = 0; r < rows; ++r) {
        float v = op_at(a, lda, trans_a, ic + ir + r, pc + p);
        if (abs_a) v = std::fabs(v);
        dst[p * kMR + r] = alpha * v;
      }
      for (std::int64_t r = rows; r < kMR; ++r) dst[p * kMR + r] = 0.0f;
    }
    dst += kc * kMR;
  }
}

/// Packs op(B)[pc..pc+kc, jc..jc+nc] into kNR-column micro-panels:
/// dst[panel][p * kNR + j], zero-padded to a whole number of panels.
void pack_b(const float* b, std::int64_t ldb, bool trans_b, bool abs_b,
            std::int64_t pc, std::int64_t jc, std::int64_t kc, std::int64_t nc,
            float* dst) {
  for (std::int64_t jr = 0; jr < nc; jr += kNR) {
    const std::int64_t cols = std::min(kNR, nc - jr);
    if (trans_b) {
      // Transposed source: iterate j outer so each read streams a contiguous
      // kc-run of one source row (the j-inner order would stride by ldb per
      // element — one cache line per float). The strided writes stay inside
      // the L1-resident packed panel.
      for (std::int64_t j = 0; j < cols; ++j) {
        const float* src = b + (jc + jr + j) * ldb + pc;
        for (std::int64_t p = 0; p < kc; ++p) {
          dst[p * kNR + j] = abs_b ? std::fabs(src[p]) : src[p];
        }
      }
      for (std::int64_t j = cols; j < kNR; ++j) {
        for (std::int64_t p = 0; p < kc; ++p) dst[p * kNR + j] = 0.0f;
      }
    } else {
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = b + (pc + p) * ldb + jc + jr;
        for (std::int64_t j = 0; j < cols; ++j) {
          dst[p * kNR + j] = abs_b ? std::fabs(src[j]) : src[j];
        }
        for (std::int64_t j = cols; j < kNR; ++j) dst[p * kNR + j] = 0.0f;
      }
    }
    dst += kc * kNR;
  }
}

/// acc[kMR][kNR] += a_panel (kc x kMR) * b_panel (kc x kNR). Fixed bounds let
/// the compiler keep the whole accumulator tile in vector registers.
inline void micro_kernel(std::int64_t kc, const float* __restrict a_panel,
                         const float* __restrict b_panel,
                         float* __restrict acc) {
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* bp = b_panel + p * kNR;
    const float* ap = a_panel + p * kMR;
    for (std::int64_t r = 0; r < kMR; ++r) {
      const float ar = ap[r];
      float* accr = acc + r * kNR;
      for (std::int64_t j = 0; j < kNR; ++j) accr[j] += ar * bp[j];
    }
  }
}

/// One kMC x kNC macro-block of C: micro-tiles over the packed panels.
void macro_block(std::int64_t mc, std::int64_t nc, std::int64_t kc,
                 const float* a_pack, const float* b_pack, float* c,
                 std::int64_t ldc) {
  alignas(64) float acc[kMR * kNR];
  for (std::int64_t jr = 0; jr < nc; jr += kNR) {
    const std::int64_t cols = std::min(kNR, nc - jr);
    const float* b_panel = b_pack + (jr / kNR) * kc * kNR;
    for (std::int64_t ir = 0; ir < mc; ir += kMR) {
      const std::int64_t rows = std::min(kMR, mc - ir);
      const float* a_panel = a_pack + (ir / kMR) * kc * kMR;
      std::fill(acc, acc + kMR * kNR, 0.0f);
      micro_kernel(kc, a_panel, b_panel, acc);
      for (std::int64_t r = 0; r < rows; ++r) {
        float* c_row = c + (ir + r) * ldc + jr;
        const float* acc_row = acc + r * kNR;
        for (std::int64_t j = 0; j < cols; ++j) c_row[j] += acc_row[j];
      }
    }
  }
}

// ---- Frozen seed kernel (GemmKernel::kReference) ----
// Verbatim from the seed repository: i-k-j streaming with a per-element
// zero-skip, transposes materialised up front. Kept un-optimised as the
// baseline that bench_engine_batch measures the blocked kernel against.

void reference_gemm_nn(std::int64_t m, std::int64_t n, std::int64_t k,
                       float alpha, const float* a, const float* b, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* c_row = c + i * n;
    for (std::int64_t p = 0; p < k; ++p) {
      const float a_ip = alpha * a[i * k + p];
      if (a_ip == 0.0f) continue;
      const float* b_row = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) {
        c_row[j] += a_ip * b_row[j];
      }
    }
  }
}

void reference_transpose(std::int64_t rows, std::int64_t cols, const float* src,
                         float* dst) {
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t col = 0; col < cols; ++col) {
      dst[col * rows + r] = src[r * cols + col];
    }
  }
}

void reference_gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
                    std::int64_t k, float alpha, const float* a, const float* b,
                    float* c) {
  std::vector<float> a_buf;
  const float* a_nn = a;
  if (trans_a) {
    a_buf.resize(static_cast<std::size_t>(m * k));
    reference_transpose(k, m, a, a_buf.data());
    a_nn = a_buf.data();
  }
  std::vector<float> b_buf;
  const float* b_nn = b;
  if (trans_b) {
    b_buf.resize(static_cast<std::size_t>(k * n));
    reference_transpose(n, k, b, b_buf.data());
    b_nn = b_buf.data();
  }
  reference_gemm_nn(m, n, k, alpha, a_nn, b_nn, c);
}

GemmKernel g_gemm_kernel = GemmKernel::kBlocked;

/// Per-thread packing buffers, reused across gemm calls (workspace pattern —
/// a coverage sweep issues millions of small GEMMs and must not allocate in
/// each one).
std::vector<float>& a_pack_buffer() {
  static thread_local std::vector<float> buf;
  return buf;
}

std::vector<float>& b_pack_buffer() {
  static thread_local std::vector<float> buf;
  return buf;
}

}  // namespace

void gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, const float* b,
          float beta, float* c) {
  gemm_abs(trans_a, trans_b, /*abs_a=*/false, /*abs_b=*/false, m, n, k, alpha,
           a, b, beta, c);
}

void gemm_abs(bool trans_a, bool trans_b, bool abs_a, bool abs_b,
              std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c) {
  DNNV_CHECK(m >= 0 && n >= 0 && k >= 0, "negative GEMM dims");
  if (beta == 0.0f) {
    for (std::int64_t i = 0; i < m * n; ++i) c[i] = 0.0f;
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0f) return;

  if (g_gemm_kernel == GemmKernel::kReference) {
    // The seed pipeline materialised absolute-value copies before its GEMM;
    // reproduce that cost profile here.
    std::vector<float> abs_a_buf;
    const float* a_in = a;
    if (abs_a) {
      abs_a_buf.resize(static_cast<std::size_t>(m * k));
      for (std::int64_t i = 0; i < m * k; ++i) abs_a_buf[static_cast<std::size_t>(i)] = std::fabs(a[i]);
      a_in = abs_a_buf.data();
    }
    std::vector<float> abs_b_buf;
    const float* b_in = b;
    if (abs_b) {
      abs_b_buf.resize(static_cast<std::size_t>(k * n));
      for (std::int64_t i = 0; i < k * n; ++i) abs_b_buf[static_cast<std::size_t>(i)] = std::fabs(b[i]);
      b_in = abs_b_buf.data();
    }
    reference_gemm(trans_a, trans_b, m, n, k, alpha, a_in, b_in, c);
    return;
  }

  const std::int64_t lda = trans_a ? m : k;
  const std::int64_t ldb = trans_b ? k : n;

  // Row-dimension parallelism: M macro-blocks are independent (each C row is
  // written by exactly one block). Nested calls (a GEMM issued from inside a
  // pool worker, e.g. the per-batch coverage sweep) stay serial — the outer
  // level already owns the cores and parallel_for runs inline there.
  ThreadPool& pool = ThreadPool::shared();
  const bool parallel = !ThreadPool::in_worker() && pool.num_threads() > 1 &&
                        m > kMC && m * n * k >= (std::int64_t{1} << 21);

  const std::int64_t num_ic = (m + kMC - 1) / kMC;
  std::vector<float>& b_pack = b_pack_buffer();
  b_pack.resize(static_cast<std::size_t>(kKC * kNC));

  for (std::int64_t jc = 0; jc < n; jc += kNC) {
    const std::int64_t nc = std::min(kNC, n - jc);
    for (std::int64_t pc = 0; pc < k; pc += kKC) {
      const std::int64_t kc = std::min(kKC, k - pc);
      pack_b(b, ldb, trans_b, abs_b, pc, jc, kc, nc, b_pack.data());

      auto ic_block = [&](std::size_t bi) {
        const std::int64_t ic = static_cast<std::int64_t>(bi) * kMC;
        const std::int64_t mc = std::min(kMC, m - ic);
        std::vector<float>& a_pack = a_pack_buffer();
        a_pack.resize(static_cast<std::size_t>(kMC * kKC));
        pack_a(a, lda, trans_a, abs_a, ic, pc, mc, kc, alpha, a_pack.data());
        macro_block(mc, nc, kc, a_pack.data(), b_pack.data(),
                    c + ic * n + jc, n);
      };
      if (parallel) {
        pool.parallel_for(static_cast<std::size_t>(num_ic), ic_block);
      } else {
        for (std::int64_t bi = 0; bi < num_ic; ++bi) {
          ic_block(static_cast<std::size_t>(bi));
        }
      }
    }
  }
}

void set_gemm_kernel(GemmKernel kernel) { g_gemm_kernel = kernel; }

GemmKernel gemm_kernel() { return g_gemm_kernel; }

}  // namespace dnnv
