#include "validate/test_suite.h"

#include <utility>

#include "tensor/batch.h"
#include "util/error.h"
#include "util/protected_file.h"

namespace dnnv::validate {

namespace {
constexpr std::uint32_t kPackageMagic = 0x50564E44;  // "DNVP"
constexpr std::uint32_t kPackageVersion = 1;
}  // namespace

TestSuite TestSuite::create(nn::Sequential& vendor_model,
                            const std::vector<testgen::FunctionalTest>& tests) {
  std::vector<Tensor> inputs;
  inputs.reserve(tests.size());
  for (const auto& test : tests) inputs.push_back(test.input);
  return create(vendor_model, inputs);
}

TestSuite TestSuite::create(nn::Sequential& vendor_model,
                            const std::vector<Tensor>& inputs) {
  DNNV_CHECK(!inputs.empty(), "cannot create an empty test suite");
  TestSuite suite;
  suite.inputs_ = inputs;
  suite.golden_labels_ = vendor_model.predict_labels(stack_batch(inputs));
  return suite;
}

TestSuite TestSuite::from_labels(std::vector<Tensor> inputs,
                                 std::vector<int> golden_labels) {
  DNNV_CHECK(!inputs.empty(), "cannot create an empty test suite");
  DNNV_CHECK(inputs.size() == golden_labels.size(),
             "inputs/labels size mismatch");
  TestSuite suite;
  suite.inputs_ = std::move(inputs);
  suite.golden_labels_ = std::move(golden_labels);
  return suite;
}

TestSuite TestSuite::prefix(std::size_t count) const {
  DNNV_CHECK(count <= size(), "prefix " << count << " exceeds suite " << size());
  TestSuite out;
  out.inputs_.assign(inputs_.begin(),
                     inputs_.begin() + static_cast<std::ptrdiff_t>(count));
  out.golden_labels_.assign(
      golden_labels_.begin(),
      golden_labels_.begin() + static_cast<std::ptrdiff_t>(count));
  return out;
}

void TestSuite::save(ByteWriter& writer) const {
  DNNV_CHECK(!empty(), "refusing to serialise an empty suite");
  writer.write_u64(inputs_.size());
  // All inputs share a shape; store it once.
  const Shape& shape = inputs_.front().shape();
  writer.write_u64(shape.ndim());
  for (std::size_t d = 0; d < shape.ndim(); ++d) {
    writer.write_i64(shape[d]);
  }
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    DNNV_CHECK(inputs_[i].shape() == shape, "suite inputs must share a shape");
    writer.write_f32_array(inputs_[i].data(),
                           static_cast<std::size_t>(inputs_[i].numel()));
    writer.write_i64(golden_labels_[i]);
  }
}

TestSuite TestSuite::load(ByteReader& reader) {
  const std::uint64_t count = reader.read_u64();
  const std::uint64_t ndim = reader.read_u64();
  DNNV_CHECK(count > 0 && count < (1u << 20), "implausible test count");
  DNNV_CHECK(ndim > 0 && ndim <= 8, "implausible tensor rank");
  std::vector<std::int64_t> dims;
  for (std::uint64_t d = 0; d < ndim; ++d) {
    dims.push_back(reader.read_i64());
    DNNV_CHECK(dims.back() > 0 && dims.back() < (1 << 20),
               "implausible dimension");
  }
  const Shape shape{dims};
  TestSuite suite;
  for (std::uint64_t i = 0; i < count; ++i) {
    auto values = reader.read_f32_array(static_cast<std::size_t>(shape.numel()));
    suite.inputs_.emplace_back(shape, std::move(values));
    suite.golden_labels_.push_back(static_cast<int>(reader.read_i64()));
  }
  return suite;
}

void TestSuite::save_package(const std::string& path, std::uint64_t key) const {
  ByteWriter payload;
  save(payload);
  write_protected_file(path, payload.take(), key, kPackageMagic,
                       kPackageVersion, "test package");
}

TestSuite TestSuite::load_package(const std::string& path, std::uint64_t key) {
  ByteReader payload(read_protected_file(path, key, kPackageMagic,
                                         kPackageVersion, "test package"));
  // The CRC already passed, so parse failures past this point mean the
  // keystream decoded garbage — i.e. the key is wrong, not the file.
  try {
    return load(payload);
  } catch (const Error& error) {
    DNNV_THROW("package rejected — wrong key? (" << error.what() << ")");
  }
}

}  // namespace dnnv::validate
