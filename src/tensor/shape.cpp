#include "tensor/shape.h"

#include <ostream>
#include <sstream>

#include "util/error.h"

namespace dnnv {

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
  for (const auto d : dims_) {
    DNNV_CHECK(d >= 0, "negative dimension in shape " << to_string());
  }
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  for (const auto d : dims_) {
    DNNV_CHECK(d >= 0, "negative dimension in shape " << to_string());
  }
}

std::int64_t Shape::operator[](std::size_t axis) const {
  DNNV_CHECK(axis < dims_.size(),
             "axis " << axis << " out of range for shape " << to_string());
  return dims_[axis];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (const auto d : dims_) n *= d;
  return n;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i != 0) os << ", ";
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Shape& shape) {
  return os << shape.to_string();
}

}  // namespace dnnv
