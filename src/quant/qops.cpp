#include "quant/qops.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "quant/quantize.h"
#include "tensor/im2col.h"
#include "util/error.h"

namespace dnnv::quant {

void im2col_s8(const std::int8_t* image, std::int64_t channels,
               std::int64_t height, std::int64_t width, std::int64_t kh,
               std::int64_t kw, std::int64_t stride, std::int64_t pad,
               std::int8_t* columns) {
  const std::int64_t out_h = conv_out_dim(height, kh, stride, pad);
  const std::int64_t out_w = conv_out_dim(width, kw, stride, pad);
  const std::int64_t out_plane = out_h * out_w;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < channels; ++c) {
    const std::int8_t* plane = image + c * height * width;
    for (std::int64_t ky = 0; ky < kh; ++ky) {
      for (std::int64_t kx = 0; kx < kw; ++kx, ++row) {
        std::int8_t* out_row = columns + row * out_plane;
        if (stride == 1) {
          const std::int64_t x0 = std::max<std::int64_t>(0, pad - kx);
          const std::int64_t x1 =
              std::min<std::int64_t>(out_w, width + pad - kx);
          for (std::int64_t oy = 0; oy < out_h; ++oy) {
            std::int8_t* dst = out_row + oy * out_w;
            const std::int64_t iy = oy - pad + ky;
            if (iy < 0 || iy >= height || x0 >= x1) {
              std::memset(dst, 0, static_cast<std::size_t>(out_w));
              continue;
            }
            if (x0 > 0) std::memset(dst, 0, static_cast<std::size_t>(x0));
            std::memcpy(dst + x0, plane + iy * width + (x0 - pad + kx),
                        static_cast<std::size_t>(x1 - x0));
            if (x1 < out_w) {
              std::memset(dst + x1, 0, static_cast<std::size_t>(out_w - x1));
            }
          }
          continue;
        }
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * stride - pad + ky;
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * stride - pad + kx;
            const bool inside =
                iy >= 0 && iy < height && ix >= 0 && ix < width;
            out_row[oy * out_w + ox] =
                inside ? plane[iy * width + ix] : std::int8_t{0};
          }
        }
      }
    }
  }
}

void im2col_row_s8(const std::int8_t* plane, std::int64_t height,
                   std::int64_t width, std::int64_t out_w, std::int64_t stride,
                   std::int64_t pad, std::int64_t ky, std::int64_t kx,
                   std::int64_t col0, std::int64_t count, std::int8_t* dst) {
  // Same-width stride-1 convs ("same" padding, the zoo shape) map a whole
  // im2col row onto one contiguous shifted window of the input plane:
  // dst[oy*W + ox] = plane[oy*W + ox + d] with d = (ky-pad)*W + (kx-pad),
  // except the clamped borders. One bulk memcpy + border zeroing beats the
  // general per-output-row walk by a wide margin on small planes, and this
  // function sits in the fused conv's inner pack position.
  if (stride == 1 && col0 == 0 && out_w == width && count % out_w == 0) {
    const std::int64_t rows_n = count / out_w;
    const std::int64_t x0 = std::max<std::int64_t>(0, pad - kx);
    const std::int64_t x1 = std::min<std::int64_t>(out_w, width + pad - kx);
    const std::int64_t y0 =
        std::min(rows_n, std::max<std::int64_t>(0, pad - ky));
    const std::int64_t y1 = std::min(rows_n, height + pad - ky);
    if (y1 <= y0 || x1 <= x0) {
      std::memset(dst, 0, static_cast<std::size_t>(count));
      return;
    }
    const std::int64_t d = (ky - pad) * width + (kx - pad);
    // First/last live bytes: row y0 starts live at x0, row y1-1 ends at x1;
    // both offsets keep plane reads in bounds (lo+d >= 0, hi+d <= H*W).
    const std::int64_t lo = y0 * out_w + x0;
    const std::int64_t hi = (y1 - 1) * out_w + x1;
    std::memset(dst, 0, static_cast<std::size_t>(lo));
    std::memcpy(dst + lo, plane + lo + d, static_cast<std::size_t>(hi - lo));
    std::memset(dst + hi, 0, static_cast<std::size_t>(count - hi));
    if (x0 > 0 || x1 < out_w) {  // punch the horizontal borders back to zero
      for (std::int64_t oy = y0; oy < y1; ++oy) {
        std::int8_t* row = dst + oy * out_w;
        if (x0 > 0 && oy > y0) std::memset(row, 0, static_cast<std::size_t>(x0));
        if (x1 < out_w && oy + 1 < y1) {
          std::memset(row + x1, 0, static_cast<std::size_t>(out_w - x1));
        }
      }
    }
    return;
  }
  // Walk output rows from (col0 / out_w) — one division for the whole call,
  // the loop advances oy/ox0 directly. This runs in the fused conv's
  // per-row inner position, so it must match im2col_s8's streaming cost.
  std::int64_t oy = col0 / out_w;
  std::int64_t ox0 = col0 - oy * out_w;
  std::int64_t j = 0;
  if (stride == 1) {
    // Live ox range of this tap, constant across output rows: ix = ox-pad+kx
    // is inside [0, width) iff ox in [x0, x1).
    const std::int64_t x0 = std::max<std::int64_t>(0, pad - kx);
    const std::int64_t x1 = std::min<std::int64_t>(out_w, width + pad - kx);
    while (j < count) {
      const std::int64_t span = std::min(count - j, out_w - ox0);
      const std::int64_t iy = oy - pad + ky;
      std::int8_t* d = dst + j;
      const std::int64_t lo = std::max(ox0, x0);
      const std::int64_t hi = std::min(ox0 + span, x1);
      if (iy < 0 || iy >= height || hi <= lo) {
        std::memset(d, 0, static_cast<std::size_t>(span));
      } else {
        if (lo > ox0) std::memset(d, 0, static_cast<std::size_t>(lo - ox0));
        std::memcpy(d + (lo - ox0), plane + iy * width + (lo - pad + kx),
                    static_cast<std::size_t>(hi - lo));
        if (ox0 + span > hi) {
          std::memset(d + (hi - ox0), 0,
                      static_cast<std::size_t>(ox0 + span - hi));
        }
      }
      j += span;
      ++oy;
      ox0 = 0;
    }
    return;
  }
  while (j < count) {
    const std::int64_t span = std::min(count - j, out_w - ox0);
    const std::int64_t iy = oy * stride - pad + ky;
    if (iy < 0 || iy >= height) {
      std::memset(dst + j, 0, static_cast<std::size_t>(span));
    } else {
      const std::int8_t* src_row = plane + iy * width;
      for (std::int64_t t = 0; t < span; ++t) {
        const std::int64_t ix = (ox0 + t) * stride - pad + kx;
        dst[j + t] = (ix >= 0 && ix < width) ? src_row[ix] : std::int8_t{0};
      }
    }
    j += span;
    ++oy;
    ox0 = 0;
  }
}

void maxpool2d_s8(const std::int8_t* image, std::int64_t channels,
                  std::int64_t height, std::int64_t width, std::int64_t kernel,
                  std::int64_t stride, std::int8_t* output) {
  const std::int64_t out_h = conv_out_dim(height, kernel, stride, 0);
  const std::int64_t out_w = conv_out_dim(width, kernel, stride, 0);
  for (std::int64_t c = 0; c < channels; ++c) {
    const std::int8_t* plane = image + c * height * width;
    std::int8_t* out_plane = output + c * out_h * out_w;
    for (std::int64_t oy = 0; oy < out_h; ++oy) {
      for (std::int64_t ox = 0; ox < out_w; ++ox) {
        std::int8_t best = std::numeric_limits<std::int8_t>::min();
        const std::int64_t y0 = oy * stride;
        const std::int64_t x0 = ox * stride;
        const std::int64_t y1 = std::min(y0 + kernel, height);
        const std::int64_t x1 = std::min(x0 + kernel, width);
        for (std::int64_t y = y0; y < y1; ++y) {
          for (std::int64_t x = x0; x < x1; ++x) {
            best = std::max(best, plane[y * width + x]);
          }
        }
        out_plane[oy * out_w + ox] = best;
      }
    }
  }
}

std::array<std::int8_t, 256> build_activation_lut(nn::ActivationKind kind,
                                                  float in_scale,
                                                  float out_scale) {
  std::array<std::int8_t, 256> lut{};
  for (int code = -128; code <= 127; ++code) {
    const float x = in_scale * static_cast<float>(code);
    const float y = nn::activate(kind, x);
    lut[static_cast<std::uint8_t>(static_cast<std::int8_t>(code))] =
        quantize_value(y, out_scale);
  }
  return lut;
}

void apply_lut(const std::array<std::int8_t, 256>& lut, const std::int8_t* in,
               std::int64_t count, std::int8_t* out) {
  for (std::int64_t i = 0; i < count; ++i) {
    out[i] = lut[static_cast<std::uint8_t>(in[i])];
  }
}

}  // namespace dnnv::quant
