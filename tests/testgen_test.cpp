// Test-generation algorithm tests: greedy optimality and laziness, gradient
// synthesis, the combined switch rule, and the baselines.
#include <gtest/gtest.h>

#include "coverage/parameter_coverage.h"
#include "nn/builder.h"
#include "nn/loss.h"
#include "tensor/batch.h"
#include "testgen/combined_generator.h"
#include "testgen/gradient_generator.h"
#include "testgen/greedy_selector.h"
#include "testgen/neuron_selector.h"
#include "util/error.h"

namespace dnnv::testgen {
namespace {

using nn::ActivationKind;
using nn::Sequential;

Sequential small_relu_net(std::uint64_t seed = 21) {
  Rng rng(seed);
  return nn::build_mlp(6, {10, 8}, 4, ActivationKind::kReLU, rng);
}

std::vector<Tensor> random_pool(int count, std::uint64_t seed = 22) {
  Rng rng(seed);
  std::vector<Tensor> pool;
  for (int i = 0; i < count; ++i) {
    pool.push_back(Tensor::rand_uniform(Shape{6}, rng, -1.0f, 1.0f));
  }
  return pool;
}

// Naive Algorithm 1 exactly as printed in the paper (full rescan per round).
std::vector<std::size_t> naive_greedy(const std::vector<DynamicBitset>& masks,
                                      std::size_t universe, int budget) {
  DynamicBitset covered(universe);
  std::vector<bool> used(masks.size(), false);
  std::vector<std::size_t> picks;
  for (int round = 0; round < budget; ++round) {
    std::size_t best = SIZE_MAX;
    std::size_t best_gain = 0;
    for (std::size_t i = 0; i < masks.size(); ++i) {
      if (used[i]) continue;
      const std::size_t gain = covered.count_new_bits(masks[i]);
      // Strict > keeps the first-best tie rule of a linear scan.
      if (best == SIZE_MAX || gain > best_gain) {
        best = i;
        best_gain = gain;
      }
    }
    if (best == SIZE_MAX) break;
    covered |= masks[best];
    used[best] = true;
    picks.push_back(best);
  }
  return picks;
}

// ---------- GreedySelector ----------

TEST(GreedySelectorTest, CoverageTrajectoryIsMonotone) {
  Sequential model = small_relu_net();
  const auto pool = random_pool(30);
  cov::CoverageAccumulator acc(static_cast<std::size_t>(model.param_count()));
  GreedySelector::Options options;
  options.max_tests = 10;
  const auto result = GreedySelector(options).select(model, pool, acc);
  ASSERT_EQ(result.tests.size(), 10u);
  ASSERT_EQ(result.coverage_after.size(), 10u);
  for (std::size_t i = 1; i < result.coverage_after.size(); ++i) {
    EXPECT_GE(result.coverage_after[i], result.coverage_after[i - 1]);
  }
  EXPECT_DOUBLE_EQ(result.final_coverage, acc.coverage());
  for (const auto& test : result.tests) {
    EXPECT_EQ(test.source, TestSource::kTrainingSample);
    EXPECT_GE(test.pool_index, 0);
  }
}

TEST(GreedySelectorTest, LazyGreedyCoverageMatchesNaive) {
  // Lazy (CELF) greedy may break exact ties differently from a linear scan,
  // but the resulting coverage after every round must match the naive
  // Algorithm 1 (both are exact greedy maximisers of a submodular gain).
  Sequential model = small_relu_net(31);
  const auto pool = random_pool(40, 32);
  const auto masks = cov::activation_masks(model, pool, cov::CoverageConfig{});
  const auto universe = static_cast<std::size_t>(model.param_count());

  const auto naive = naive_greedy(masks, universe, 12);

  cov::CoverageAccumulator acc(universe);
  GreedySelector::Options options;
  options.max_tests = 12;
  std::vector<bool> used(pool.size(), false);
  const auto lazy =
      GreedySelector(options).select_with_masks(pool, masks, acc, used);

  ASSERT_EQ(lazy.tests.size(), naive.size());
  DynamicBitset naive_covered(universe);
  for (std::size_t round = 0; round < naive.size(); ++round) {
    naive_covered |= masks[naive[round]];
    EXPECT_NEAR(lazy.coverage_after[round],
                static_cast<double>(naive_covered.count()) /
                    static_cast<double>(universe),
                1e-12)
        << "round " << round;
  }
}

TEST(GreedySelectorTest, FirstPickHasMaximalSingleCoverage) {
  Sequential model = small_relu_net(41);
  const auto pool = random_pool(25, 42);
  const auto masks = cov::activation_masks(model, pool, cov::CoverageConfig{});
  std::size_t best_count = 0;
  for (const auto& mask : masks) best_count = std::max(best_count, mask.count());

  cov::CoverageAccumulator acc(static_cast<std::size_t>(model.param_count()));
  GreedySelector::Options options;
  options.max_tests = 1;
  std::vector<bool> used(pool.size(), false);
  const auto result =
      GreedySelector(options).select_with_masks(pool, masks, acc, used);
  ASSERT_EQ(result.tests.size(), 1u);
  EXPECT_EQ(masks[static_cast<std::size_t>(result.tests[0].pool_index)].count(),
            best_count);
}

TEST(GreedySelectorTest, StopOnZeroGainTerminatesEarly) {
  Sequential model = small_relu_net(51);
  // A pool of identical inputs: after the first pick every gain is zero.
  std::vector<Tensor> pool(8, random_pool(1, 52).front());
  cov::CoverageAccumulator acc(static_cast<std::size_t>(model.param_count()));
  GreedySelector::Options options;
  options.max_tests = 8;
  options.stop_on_zero_gain = true;
  const auto result = GreedySelector(options).select(model, pool, acc);
  EXPECT_EQ(result.tests.size(), 1u);
}

TEST(GreedySelectorTest, NeverSelectsSamePoolEntryTwice) {
  Sequential model = small_relu_net(61);
  const auto pool = random_pool(5, 62);
  cov::CoverageAccumulator acc(static_cast<std::size_t>(model.param_count()));
  GreedySelector::Options options;
  options.max_tests = 10;  // more than the pool
  const auto result = GreedySelector(options).select(model, pool, acc);
  EXPECT_EQ(result.tests.size(), 5u);
  std::set<std::int64_t> picked;
  for (const auto& test : result.tests) picked.insert(test.pool_index);
  EXPECT_EQ(picked.size(), 5u);
}

// ---------- GradientGenerator ----------

TEST(GradientGeneratorTest, SynthesisedBatchTargetsEachClass) {
  Sequential model = small_relu_net(71);
  // Freshly-initialised models have all-zero biases, making the all-zero
  // input a stationary point of the loss (every ReLU pre-activation is
  // exactly 0). Trained models never have that property; emulate it.
  Rng bias_rng(70);
  for (const auto& view : model.param_views()) {
    if (view.is_bias) {
      for (std::int64_t i = 0; i < view.size; ++i) {
        view.data[i] = static_cast<float>(bias_rng.normal(0.0, 0.3));
      }
    }
  }
  GradientGenerator::Options options;
  options.steps = 300;
  options.learning_rate = 0.03f;
  options.clamp_lo = -2.0f;
  options.clamp_hi = 2.0f;
  GradientGenerator generator(options);
  Rng rng(7);
  Sequential loss_model = model.clone();
  const auto batch = generator.generate_batch(loss_model, Shape{6}, 4, 0, rng);
  ASSERT_EQ(batch.size(), 4u);
  int classified_as_target = 0;
  for (int i = 0; i < 4; ++i) {
    if (model.predict_label(batch[static_cast<std::size_t>(i)]) == i) {
      ++classified_as_target;
    }
  }
  // Gradient descent should steer most class inputs to their target label.
  EXPECT_GE(classified_as_target, 3);
}

TEST(GradientGeneratorTest, FirstBatchStartsFromZeros) {
  Sequential model = small_relu_net(72);
  GradientGenerator::Options options;
  options.steps = 0;  // no updates: output must be the initialisation
  GradientGenerator generator(options);
  Rng rng(8);
  Sequential loss_model = model.clone();
  const auto batch = generator.generate_batch(loss_model, Shape{6}, 4, 0, rng);
  for (const auto& input : batch) {
    EXPECT_FLOAT_EQ(max_abs(input), 0.0f);
  }
  // Later batches jitter their init.
  const auto batch1 = generator.generate_batch(loss_model, Shape{6}, 4, 1, rng);
  EXPECT_GT(max_abs(batch1.front()), 0.0f);
}

TEST(GradientGeneratorTest, MaskedModelZeroesCoveredParams) {
  Sequential model = small_relu_net(73);
  DynamicBitset covered(static_cast<std::size_t>(model.param_count()));
  covered.set(0);
  covered.set(5);
  Sequential masked = GradientGenerator::masked_model(model, covered);
  EXPECT_EQ(masked.get_param(0), 0.0f);
  EXPECT_EQ(masked.get_param(5), 0.0f);
  EXPECT_EQ(masked.get_param(1), model.get_param(1));
}

TEST(GradientGeneratorTest, GenerateFillsBudgetInClassBatches) {
  Sequential model = small_relu_net(74);
  cov::CoverageAccumulator acc(static_cast<std::size_t>(model.param_count()));
  GradientGenerator::Options options;
  options.max_tests = 10;  // 2 full batches of k=4 fit
  options.steps = 20;
  const auto result =
      GradientGenerator(options).generate(model, Shape{6}, 4, acc);
  EXPECT_EQ(result.tests.size(), 8u);
  for (const auto& test : result.tests) {
    EXPECT_EQ(test.source, TestSource::kSynthetic);
    EXPECT_EQ(test.pool_index, -1);
  }
  for (std::size_t i = 1; i < result.coverage_after.size(); ++i) {
    EXPECT_GE(result.coverage_after[i], result.coverage_after[i - 1]);
  }
}

// ---------- CombinedGenerator ----------

TEST(CombinedGeneratorTest, FillsBudgetAndMixesSources) {
  Sequential model = small_relu_net(81);
  const auto pool = random_pool(20, 82);
  cov::CoverageAccumulator acc(static_cast<std::size_t>(model.param_count()));
  CombinedGenerator::Options options;
  options.max_tests = 16;
  options.gradient.steps = 20;
  options.gradient.seed = 5;
  const auto result = CombinedGenerator(options).generate(
      model, pool, Shape{6}, 4, acc);
  EXPECT_EQ(result.tests.size(), 16u);
  for (std::size_t i = 1; i < result.coverage_after.size(); ++i) {
    EXPECT_GE(result.coverage_after[i], result.coverage_after[i - 1]);
  }
  // The early picks should come from the training pool (real samples win
  // early, as the paper argues).
  EXPECT_EQ(result.tests.front().source, TestSource::kTrainingSample);
}

TEST(CombinedGeneratorTest, AtLeastMatchesGreedyAloneOnFinalCoverage) {
  Sequential model = small_relu_net(91);
  const auto pool = random_pool(20, 92);
  const auto universe = static_cast<std::size_t>(model.param_count());
  const auto masks = cov::activation_masks(model, pool, cov::CoverageConfig{});

  cov::CoverageAccumulator greedy_acc(universe);
  GreedySelector::Options greedy_options;
  greedy_options.max_tests = 16;
  std::vector<bool> used(pool.size(), false);
  const auto greedy = GreedySelector(greedy_options)
                          .select_with_masks(pool, masks, greedy_acc, used);

  cov::CoverageAccumulator combined_acc(universe);
  CombinedGenerator::Options options;
  options.max_tests = 16;
  options.gradient.steps = 30;
  const auto combined = CombinedGenerator(options).generate(
      model, pool, masks, Shape{6}, 4, combined_acc);

  EXPECT_GE(combined.final_coverage + 1e-9, greedy.final_coverage);
}

TEST(CombinedGeneratorTest, SwitchesToSyntheticWhenPoolExhausted) {
  Sequential model = small_relu_net(93);
  // Pool of one sample: after it, only Algorithm 2 can add coverage.
  const auto pool = random_pool(1, 94);
  cov::CoverageAccumulator acc(static_cast<std::size_t>(model.param_count()));
  CombinedGenerator::Options options;
  options.max_tests = 9;  // 1 pool + 2 batches of 4
  options.gradient.steps = 10;
  const auto result = CombinedGenerator(options).generate(
      model, pool, Shape{6}, 4, acc);
  ASSERT_EQ(result.tests.size(), 9u);
  int synthetic = 0;
  for (const auto& test : result.tests) {
    if (test.source == TestSource::kSynthetic) ++synthetic;
  }
  EXPECT_EQ(synthetic, 8);
}

// Satellite check for the §IV-D machinery: replay the recorded decision
// trace of a deterministic run and verify (a) the lazy-greedy heap reported
// exactly the gain a naive full rescan would (staleness handled), (b) the
// probe batch was regenerated exactly on the probe_refresh cadence, and
// (c) the switch rule fired exactly when the synthetic per-test gain
// exceeded the next greedy gain — never before.
TEST(CombinedGeneratorTest, DecisionTraceVerifiesSwitchRuleAndProbeStaleness) {
  Sequential model = small_relu_net(101);
  // Small pool + larger budget: greedy gains decay as masks overlap, so the
  // run provably ends in Algorithm 2 (organically or at pool exhaustion).
  const auto pool = random_pool(8, 102);
  const auto universe = static_cast<std::size_t>(model.param_count());
  const auto masks = cov::activation_masks(model, pool, cov::CoverageConfig{});

  cov::CoverageAccumulator acc(universe);
  CombinedGenerator::Options options;
  options.max_tests = 16;
  options.probe_refresh = 3;  // tight cadence so staleness logic is exercised
  options.gradient.steps = 15;
  const auto result =
      CombinedGenerator(options).generate(model, pool, masks, Shape{6}, 4, acc);
  ASSERT_FALSE(result.decisions.empty());

  // Replay state: the covered set and pool usage as of each decision.
  Sequential mask_model = model.clone();
  cov::ParameterCoverage coverage(mask_model, cov::CoverageConfig{});
  DynamicBitset covered(universe);
  std::vector<bool> used(pool.size(), false);
  std::size_t test_idx = 0;
  int commits_since_probe = 0;
  bool have_probe = false;

  auto consume_tests_until = [&](std::size_t stop) {
    for (; test_idx < stop && test_idx < result.tests.size(); ++test_idx) {
      const auto& test = result.tests[test_idx];
      if (test.source == TestSource::kTrainingSample) {
        ASSERT_GE(test.pool_index, 0);
        covered |= masks[static_cast<std::size_t>(test.pool_index)];
        used[static_cast<std::size_t>(test.pool_index)] = true;
        ++commits_since_probe;
      } else {
        covered |= coverage.activation_mask(test.input);
      }
    }
  };

  for (std::size_t di = 0; di < result.decisions.size(); ++di) {
    const auto& d = result.decisions[di];
    consume_tests_until(d.step);
    ASSERT_EQ(test_idx, d.step);

    // (b) staleness cadence: refresh iff no probe yet or probe_refresh
    // greedy commits landed since the last refresh.
    EXPECT_EQ(d.probe_refreshed,
              !have_probe || commits_since_probe >= options.probe_refresh)
        << "decision " << di;
    if (d.probe_refreshed) {
      have_probe = true;
      commits_since_probe = 0;
    }

    // (a) lazy-greedy == naive full rescan on the replayed covered set.
    std::size_t naive_best = 0;
    bool pool_left = false;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (used[i]) continue;
      pool_left = true;
      naive_best = std::max(naive_best, covered.count_new_bits(masks[i]));
    }
    if (pool_left) {
      EXPECT_DOUBLE_EQ(d.greedy_gain, static_cast<double>(naive_best))
          << "decision " << di;
    }

    // (c) the switch rule, exactly.
    EXPECT_EQ(d.chose_synthetic,
              !pool_left || d.synthetic_gain > d.greedy_gain)
        << "decision " << di;

    // kSwitchOnce: the first synthetic choice ends the decision trace.
    if (d.chose_synthetic) EXPECT_EQ(di, result.decisions.size() - 1);
  }

  // The run must have exercised both producers for the assertions above to
  // mean anything.
  EXPECT_GT(result.decisions.size(), 1u);
  EXPECT_TRUE(result.decisions.back().chose_synthetic);
  for (std::size_t di = 0; di + 1 < result.decisions.size(); ++di) {
    EXPECT_FALSE(result.decisions[di].chose_synthetic);
  }
}

// ---------- NeuronCoverageSelector / RandomSelector ----------

TEST(NeuronSelectorTest, SelectsBudgetAndSaturates) {
  Sequential model = small_relu_net(95);
  const auto pool = random_pool(15, 96);
  NeuronCoverageSelector::Options options;
  options.max_tests = 10;
  const auto result =
      NeuronCoverageSelector(options).select(model, Shape{6}, pool);
  EXPECT_EQ(result.tests.size(), 10u);
  // Neuron coverage of an MLP saturates almost immediately; the trajectory
  // must be monotone and hit its ceiling early.
  for (std::size_t i = 1; i < result.coverage_after.size(); ++i) {
    EXPECT_GE(result.coverage_after[i], result.coverage_after[i - 1]);
  }
  EXPECT_NEAR(result.coverage_after[2], result.final_coverage, 0.15);
}

TEST(NeuronSelectorTest, NoDuplicatePicks) {
  Sequential model = small_relu_net(97);
  const auto pool = random_pool(12, 98);
  NeuronCoverageSelector::Options options;
  options.max_tests = 12;
  const auto result =
      NeuronCoverageSelector(options).select(model, Shape{6}, pool);
  std::set<std::int64_t> picked;
  for (const auto& test : result.tests) picked.insert(test.pool_index);
  EXPECT_EQ(picked.size(), result.tests.size());
}

TEST(RandomSelectorTest, DeterministicAndBounded) {
  const auto pool = random_pool(9, 99);
  const auto a = RandomSelector(5, 7).select(pool);
  const auto b = RandomSelector(5, 7).select(pool);
  ASSERT_EQ(a.tests.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a.tests[i].pool_index, b.tests[i].pool_index);
  }
  const auto all = RandomSelector(50, 7).select(pool);
  EXPECT_EQ(all.tests.size(), 9u);  // clamped to pool size
}

}  // namespace
}  // namespace dnnv::testgen
