#include "nn/maxpool2d.h"

#include "nn/workspace.h"
#include "tensor/im2col.h"
#include "util/error.h"

namespace dnnv::nn {

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride) {
  DNNV_CHECK(kernel > 0 && stride > 0, "bad pooling geometry");
}

Shape MaxPool2d::output_shape(const Shape& input_shape) const {
  DNNV_CHECK(input_shape.ndim() == 4, "maxpool expects NCHW, got " << input_shape);
  const std::int64_t out_h = conv_out_dim(input_shape[2], kernel_, stride_, 0);
  const std::int64_t out_w = conv_out_dim(input_shape[3], kernel_, stride_, 0);
  return Shape{input_shape[0], input_shape[1], out_h, out_w};
}

Tensor MaxPool2d::forward(const Tensor& input) {
  Tensor output(output_shape(input.shape()));
  fill_forward(input, output);
  return output;
}

void MaxPool2d::forward_into(std::size_t, const Tensor& input, Tensor& output,
                             Workspace&) {
  fill_forward(input, output);
}

void MaxPool2d::fill_forward(const Tensor& input, Tensor& output) {
  const Shape out_shape = output_shape(input.shape());
  cached_input_shape_ = input.shape();
  const std::int64_t n = input.shape()[0];
  const std::int64_t c = input.shape()[1];
  const std::int64_t h = input.shape()[2];
  const std::int64_t w = input.shape()[3];
  const std::int64_t out_h = out_shape[2];
  const std::int64_t out_w = out_shape[3];

  argmax_.assign(static_cast<std::size_t>(output.numel()), 0);
  std::int64_t out_idx = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = input.data() + (i * c + ch) * h * w;
      const std::int64_t plane_base = (i * c + ch) * h * w;
      for (std::int64_t oy = 0; oy < out_h; ++oy) {
        for (std::int64_t ox = 0; ox < out_w; ++ox, ++out_idx) {
          const std::int64_t y0 = oy * stride_;
          const std::int64_t x0 = ox * stride_;
          float best = plane[y0 * w + x0];
          std::int64_t best_idx = y0 * w + x0;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            const std::int64_t y = y0 + ky;
            if (y >= h) break;
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              const std::int64_t x = x0 + kx;
              if (x >= w) break;
              const float v = plane[y * w + x];
              if (v > best) {
                best = v;
                best_idx = y * w + x;
              }
            }
          }
          output[out_idx] = best;
          argmax_[static_cast<std::size_t>(out_idx)] = plane_base + best_idx;
        }
      }
    }
  }
}

Tensor MaxPool2d::route_back(const Tensor& upstream) const {
  Tensor downstream(cached_input_shape_);
  route_back_into(upstream, downstream);
  return downstream;
}

void MaxPool2d::route_back_into(const Tensor& upstream,
                                Tensor& downstream) const {
  DNNV_CHECK(static_cast<std::size_t>(upstream.numel()) == argmax_.size(),
             "pool upstream size mismatch — forward not called?");
  for (std::int64_t i = 0; i < upstream.numel(); ++i) {
    downstream[argmax_[static_cast<std::size_t>(i)]] += upstream[i];
  }
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  return route_back(grad_output);
}

Tensor MaxPool2d::sensitivity_backward(const Tensor& sens_output) {
  // Max pooling is a selection: only the winning tap influences the output,
  // so sensitivity routes exactly like the gradient.
  return route_back(sens_output);
}

void MaxPool2d::backward_into(std::size_t, const Tensor& grad_output,
                              Tensor& grad_input, Workspace&) {
  grad_input.fill(0.0f);  // scatter target
  route_back_into(grad_output, grad_input);
}

void MaxPool2d::sensitivity_backward_into(std::size_t,
                                          const Tensor& sens_output,
                                          Tensor& sens_input, Workspace&) {
  sens_input.fill(0.0f);  // scatter target
  route_back_into(sens_output, sens_input);
}

void MaxPool2d::sensitivity_backward_item(std::size_t, std::int64_t item,
                                          const Tensor& sens_output,
                                          Tensor& sens_input, Workspace&) {
  const std::int64_t n = cached_input_shape_[0];
  DNNV_CHECK(item >= 0 && item < n, "item " << item << " outside cached batch");
  const std::int64_t out_item =
      static_cast<std::int64_t>(argmax_.size()) / n;
  const std::int64_t in_item = cached_input_shape_.numel() / n;
  DNNV_CHECK(sens_output.numel() == out_item,
             "per-item pool sensitivity size mismatch");
  // argmax_ holds batch-absolute input indices; rebase onto this item.
  const std::int64_t base = item * in_item;
  sens_input.fill(0.0f);
  for (std::int64_t i = 0; i < out_item; ++i) {
    const std::int64_t target =
        argmax_[static_cast<std::size_t>(item * out_item + i)] - base;
    sens_input[target] += sens_output[i];
  }
}

std::unique_ptr<Layer> MaxPool2d::clone() const {
  auto copy = std::make_unique<MaxPool2d>(kernel_, stride_);
  copy->set_name(name());
  return copy;
}

void MaxPool2d::save(ByteWriter& writer) const {
  writer.write_string(kind());
  writer.write_i64(kernel_);
  writer.write_i64(stride_);
}

std::unique_ptr<MaxPool2d> MaxPool2d::load(ByteReader& reader) {
  const std::int64_t kernel = reader.read_i64();
  const std::int64_t stride = reader.read_i64();
  return std::make_unique<MaxPool2d>(kernel, stride);
}

}  // namespace dnnv::nn
