#include "nn/builder.h"

#include "nn/activation_layer.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/maxpool2d.h"
#include "nn/normalize.h"
#include "util/error.h"

namespace dnnv::nn {

Sequential build_convnet(const ConvNetSpec& spec, Rng& rng) {
  DNNV_CHECK(!spec.conv_channels.empty(), "need at least one conv layer");
  DNNV_CHECK(spec.num_classes > 1, "need at least two classes");
  const InitKind init = default_init_for(spec.activation);

  Sequential model;
  if (spec.normalize_input) {
    model.add(std::make_unique<Normalize>(spec.input_mean, spec.input_scale));
  }
  std::int64_t channels = spec.in_channels;
  std::int64_t height = spec.in_height;
  std::int64_t width = spec.in_width;
  for (std::size_t i = 0; i < spec.conv_channels.size(); ++i) {
    Conv2d::Config conv;
    conv.in_channels = channels;
    conv.out_channels = spec.conv_channels[i];
    conv.kernel = 3;
    conv.stride = 1;
    conv.pad = spec.conv_pad;
    model.add(std::make_unique<Conv2d>(conv, rng, init));
    model.add(std::make_unique<ActivationLayer>(spec.activation));
    channels = conv.out_channels;
    height = height + 2 * spec.conv_pad - 2;
    width = width + 2 * spec.conv_pad - 2;
    if (i % 2 == 1) {  // pool after every second conv, as in Table I
      model.add(std::make_unique<MaxPool2d>(2, 2));
      height /= 2;
      width /= 2;
    }
  }
  model.add(std::make_unique<Flatten>());
  std::int64_t features = channels * height * width;
  for (const auto units : spec.dense_units) {
    model.add(std::make_unique<Dense>(features, units, rng, init));
    model.add(std::make_unique<ActivationLayer>(spec.activation));
    features = units;
  }
  model.add(std::make_unique<Dense>(features, spec.num_classes, rng, init));
  return model;
}

Sequential build_mlp(std::int64_t in_features,
                     const std::vector<std::int64_t>& hidden,
                     std::int64_t num_classes, ActivationKind activation,
                     Rng& rng) {
  DNNV_CHECK(num_classes > 1, "need at least two classes");
  const InitKind init = default_init_for(activation);
  Sequential model;
  std::int64_t features = in_features;
  for (const auto units : hidden) {
    model.add(std::make_unique<Dense>(features, units, rng, init));
    model.add(std::make_unique<ActivationLayer>(activation));
    features = units;
  }
  model.add(std::make_unique<Dense>(features, num_classes, rng, init));
  return model;
}

}  // namespace dnnv::nn
