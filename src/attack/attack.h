// Attack interface: craft a parameter perturbation that compromises the IP.
#ifndef DNNV_ATTACK_ATTACK_H_
#define DNNV_ATTACK_ATTACK_H_

#include "attack/perturbation.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace dnnv::attack {

/// Base class for parameter-space attacks (Liu et al., ICCAD 2017 threat
/// model: the adversary can modify stored parameters, e.g. in off-chip
/// memory after reverse engineering).
///
/// craft() must leave `model` with its ORIGINAL parameters (attacks may
/// mutate it during the search but restore before returning); the returned
/// Perturbation is applied by the caller.
class Attack {
 public:
  virtual ~Attack() = default;

  /// Crafts a perturbation intended to misclassify `victim` (whose clean
  /// prediction the attack reads from the model). Returns an empty
  /// perturbation when no compromising perturbation was found.
  virtual Perturbation craft(nn::Sequential& model, const Tensor& victim,
                             Rng& rng) const = 0;

  virtual std::string name() const = 0;
};

}  // namespace dnnv::attack

#endif  // DNNV_ATTACK_ATTACK_H_
