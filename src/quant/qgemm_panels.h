// Internal panel machinery of the int8 GEMM engine: blocking constants,
// packers and micro/macro kernels, templated on the micro-kernel flavour so
// the VNNI and scalar layouts can coexist in one binary and be switched at
// runtime (set_qgemm_kernel). Included by qgemm.cpp (matrix driver) and
// qconv.cpp (fused im2col packer) — not part of the public API.
//
// Layout/signedness contract (see qgemm.cpp header comment for the math):
//  - A panels: kMR rows x K-quads, bytes offset-encoded (s8 XOR 0x80) for
//    VNNI so vpdpbusd's unsigned operand is exact; raw s8 for scalar.
//  - B panels: kNR cols x K-quads; VNNI interleaves the quad per lane
//    (dst[quad][col][4]), scalar keeps k-steps contiguous (dst[quad][4][kNR])
//    so the inner column loop autovectorizes.
//  - colsum(B) is only collected for VNNI (it funds the +128 offset
//    correction); the scalar kernel needs none, so its pack is cheaper.
#ifndef DNNV_QUANT_QGEMM_PANELS_H_
#define DNNV_QUANT_QGEMM_PANELS_H_

#include <algorithm>
#include <cstdint>
#include <cstring>

#if defined(__AVX512VNNI__) && defined(__AVX512BW__) && defined(__AVX512F__)
#include <immintrin.h>
#define DNNV_QGEMM_VNNI 1
#else
#define DNNV_QGEMM_VNNI 0
#endif

namespace dnnv::quant::detail {

// Blocking mirrors the float kernel (tensor/gemm.cpp): kMC x kNC macro-tiles
// of C over kKC-deep packed slices, kMR x kNR register tile. K is padded to
// quads inside the panels because vpdpbusd consumes int8 four at a time.
constexpr std::int64_t kMR = 8;
constexpr std::int64_t kNR = 32;  // 2 zmm of 16 int32 lanes
constexpr std::int64_t kMC = 64;
constexpr std::int64_t kKC = 256;  // multiple of 4
constexpr std::int64_t kNC = 512;

inline constexpr std::int64_t quads(std::int64_t kc) { return (kc + 3) / 4; }

template <bool Vnni>
inline constexpr std::uint8_t a_zero() {
  return Vnni ? std::uint8_t{0x80} : std::uint8_t{0x00};  // offset-encoded 0
}

/// Packs A[ic..ic+mc, pc..pc+kc] (row-major, leading dim lda) into kMR-row
/// panels of K-quads: dst[panel][quad][row][4]. Panels are contiguous over
/// the whole mc range, so one call packs an entire K-slice of A. Interior
/// quads move 4 bytes at a time as a u32 (the offset encode is one XOR
/// against 0x80808080); only the ragged edges take the byte loop.
template <bool Vnni>
inline void pack_a(const std::int8_t* a, std::int64_t lda, std::int64_t ic,
                   std::int64_t pc, std::int64_t mc, std::int64_t kc,
                   std::uint8_t* dst) {
  const std::int64_t kc4 = quads(kc);
  const std::int64_t full_q = kc / 4;  // quads with no k padding
  const std::uint32_t xor_mask = a_zero<Vnni>() * 0x01010101u;
  for (std::int64_t ir = 0; ir < mc; ir += kMR) {
    const std::int64_t rows = std::min(kMR, mc - ir);
    for (std::int64_t r = 0; r < rows; ++r) {
      const std::int8_t* src = a + (ic + ir + r) * lda + pc;
      std::uint8_t* out = dst + r * 4;
      for (std::int64_t q = 0; q < full_q; ++q) {
        std::uint32_t quad;
        std::memcpy(&quad, src + q * 4, 4);
        quad ^= xor_mask;
        std::memcpy(out + q * kMR * 4, &quad, 4);
      }
      for (std::int64_t q = full_q; q < kc4; ++q) {
        for (std::int64_t t = 0; t < 4; ++t) {
          out[q * kMR * 4 + t] =
              q * 4 + t < kc
                  ? static_cast<std::uint8_t>(
                        static_cast<std::uint8_t>(src[q * 4 + t]) ^
                        a_zero<Vnni>())
                  : a_zero<Vnni>();
        }
      }
    }
    for (std::int64_t r = rows; r < kMR; ++r) {  // zero-pad missing rows
      std::uint8_t* out = dst + r * 4;
      for (std::int64_t q = 0; q < kc4; ++q) {
        std::memset(out + q * kMR * 4, a_zero<Vnni>(), 4);
      }
    }
    dst += kc4 * kMR * 4;
  }
}

/// Bytes of packed-A storage for an m x kc slice (panels padded to kMR/quads).
inline std::size_t packed_a_slice_bytes(std::int64_t m, std::int64_t kc) {
  const std::int64_t m_pad = (m + kMR - 1) / kMR * kMR;
  return static_cast<std::size_t>(m_pad * quads(kc) * 4);
}

/// Scatters one B row (nc contiguous values for k-step p) into the panel
/// layout. Scalar layout degenerates to straight 32-byte copies; VNNI
/// additionally interleaves and feeds colsum.
template <bool Vnni>
inline void scatter_b_row(const std::int8_t* row, std::int64_t nc,
                          std::int64_t kc4, std::int64_t p, std::int8_t* dst,
                          std::int32_t* colsum) {
  const std::int64_t q = p / 4, t = p % 4;
  for (std::int64_t jr = 0; jr < nc; jr += kNR) {
    const std::int64_t cols = std::min(kNR, nc - jr);
    std::int8_t* panel = dst + (jr / kNR) * kc4 * kNR * 4 + q * kNR * 4;
    const std::int8_t* src = row + jr;
    if constexpr (Vnni) {
      std::int32_t* sums = colsum + jr;
      for (std::int64_t j = 0; j < cols; ++j) {
        panel[j * 4 + t] = src[j];
        sums[j] += src[j];
      }
    } else {
      std::memcpy(panel + t * kNR, src, static_cast<std::size_t>(cols));
    }
  }
}

/// Packs kc x nc of B into kNR-column K-quad panels via a row provider:
/// row_fn(p) returns a pointer to nc contiguous values of B-row p (valid
/// until the next call). The two-pass path hands out matrix rows; the fused
/// conv path generates each im2col row on the fly — same packer, no
/// materialized column matrix. Padding bytes are zeroed up front; colsum is
/// collected only for the VNNI flavour (tail lanes must be pre-zeroed by the
/// caller once, they are never touched here).
template <bool Vnni, class RowFn>
inline void pack_b_rows(std::int64_t kc, std::int64_t nc, RowFn&& row_fn,
                        std::int8_t* dst, std::int32_t* colsum) {
  const std::int64_t kc4 = quads(kc);
  const std::int64_t panels = (nc + kNR - 1) / kNR;
  std::memset(dst, 0, static_cast<std::size_t>(panels * kc4 * kNR * 4));
  if constexpr (Vnni) {
    std::fill(colsum, colsum + nc, 0);
  }
  for (std::int64_t p = 0; p < kc; ++p) {
    scatter_b_row<Vnni>(row_fn(p), nc, kc4, p, dst, colsum);
  }
}

/// Bytes of packed-B storage for a kc x nc slice.
inline std::size_t packed_b_slice_bytes(std::int64_t nc, std::int64_t kc) {
  const std::int64_t panels = (nc + kNR - 1) / kNR;
  return static_cast<std::size_t>(panels * quads(kc) * kNR * 4);
}

#if DNNV_QGEMM_VNNI

/// Interleaves one K-quad of B (4 rows, `cols` <= kNR live values each) into
/// a VNNI panel quad — dst[j*4+t] = row_t[j] — and accumulates colsum.
/// The byte-granular scatter is the hot spot of the fused conv pack, so this
/// builds the interleaved u32 words in registers (zero-extend each row to
/// int32 lanes, shift into byte position, OR) and feeds colsum with one
/// vpdpbusd per zmm against an all-ones unsigned operand: 1*b summed four
/// bytes at a time is exactly the signed column sum. Always writes the full
/// kNR*4-byte quad (dead lanes as zeros), so callers need no pre-memset.
inline void interleave_quad_vnni(const std::int8_t* r0, const std::int8_t* r1,
                                 const std::int8_t* r2, const std::int8_t* r3,
                                 std::int64_t cols, std::int8_t* dst,
                                 std::int32_t* colsum) {
#if defined(__AVX512VL__)
  const __mmask32 live =
      cols >= kNR ? 0xFFFFFFFFu : ((std::uint32_t{1} << cols) - 1u);
  const __m256i b0 = _mm256_maskz_loadu_epi8(live, r0);
  const __m256i b1 = _mm256_maskz_loadu_epi8(live, r1);
  const __m256i b2 = _mm256_maskz_loadu_epi8(live, r2);
  const __m256i b3 = _mm256_maskz_loadu_epi8(live, r3);
  const __m512i ones = _mm512_set1_epi8(1);
  for (int half = 0; half < 2; ++half) {
    const __m512i w0 = _mm512_cvtepu8_epi32(half == 0
                                                ? _mm256_castsi256_si128(b0)
                                                : _mm256_extracti128_si256(b0, 1));
    const __m512i w1 = _mm512_cvtepu8_epi32(half == 0
                                                ? _mm256_castsi256_si128(b1)
                                                : _mm256_extracti128_si256(b1, 1));
    const __m512i w2 = _mm512_cvtepu8_epi32(half == 0
                                                ? _mm256_castsi256_si128(b2)
                                                : _mm256_extracti128_si256(b2, 1));
    const __m512i w3 = _mm512_cvtepu8_epi32(half == 0
                                                ? _mm256_castsi256_si128(b3)
                                                : _mm256_extracti128_si256(b3, 1));
    const __m512i words = _mm512_or_si512(
        _mm512_or_si512(w0, _mm512_slli_epi32(w1, 8)),
        _mm512_or_si512(_mm512_slli_epi32(w2, 16), _mm512_slli_epi32(w3, 24)));
    _mm512_storeu_si512(reinterpret_cast<void*>(dst + half * 64), words);
    std::int32_t* cs = colsum + half * 16;
    const __m512i sums = _mm512_dpbusd_epi32(
        _mm512_loadu_si512(reinterpret_cast<const void*>(cs)), ones, words);
    _mm512_storeu_si512(reinterpret_cast<void*>(cs), sums);
  }
#else
  for (std::int64_t j = 0; j < kNR; ++j) {
    const bool in = j < cols;
    const std::int8_t v0 = in ? r0[j] : std::int8_t{0};
    const std::int8_t v1 = in ? r1[j] : std::int8_t{0};
    const std::int8_t v2 = in ? r2[j] : std::int8_t{0};
    const std::int8_t v3 = in ? r3[j] : std::int8_t{0};
    dst[j * 4 + 0] = v0;
    dst[j * 4 + 1] = v1;
    dst[j * 4 + 2] = v2;
    dst[j * 4 + 3] = v3;
    colsum[j] += v0 + v1 + v2 + v3;
  }
#endif
}

/// Quad-at-a-time B packer for the fused conv path: row_gen(p, out) writes
/// B-row p (nc values) into out. Rows are generated four at a time into
/// `rowbuf` (4 * nc bytes) so each panel quad is built with one vectorized
/// interleave instead of four byte scatters. Every panel byte and all n_pad
/// colsum lanes are (over)written — no pre-zeroing needed by the caller.
template <class RowGen>
inline void pack_b_quads(std::int64_t kc, std::int64_t nc, RowGen&& row_gen,
                         std::int8_t* dst, std::int32_t* colsum,
                         std::int8_t* rowbuf) {
  const std::int64_t kc4 = quads(kc);
  const std::int64_t n_pad = (nc + kNR - 1) / kNR * kNR;
  std::fill(colsum, colsum + n_pad, 0);
  for (std::int64_t q = 0; q < kc4; ++q) {
    const std::int8_t* rows[4];
    for (std::int64_t t = 0; t < 4; ++t) {
      std::int8_t* row = rowbuf + t * nc;
      const std::int64_t p = q * 4 + t;
      if (p < kc) {
        row_gen(p, row);
      } else {
        std::memset(row, 0, static_cast<std::size_t>(nc));
      }
      rows[t] = row;
    }
    for (std::int64_t jr = 0; jr < nc; jr += kNR) {
      const std::int64_t cols = std::min(kNR, nc - jr);
      std::int8_t* panel = dst + (jr / kNR) * kc4 * kNR * 4 + q * kNR * 4;
      interleave_quad_vnni(rows[0] + jr, rows[1] + jr, rows[2] + jr,
                           rows[3] + jr, cols, panel, colsum + jr);
    }
  }
}

#endif  // DNNV_QGEMM_VNNI

#if DNNV_QGEMM_VNNI

/// C tile (rows x cols at c, leading dim ldc) += a_panel * b_panel over kc4
/// K-quads, with the unsigned-offset correction (128 * colsum) subtracted in
/// registers. Partial tiles use AVX-512 write masks — no scalar edge path.
inline void micro_kernel_vnni(std::int64_t kc4, const std::uint8_t* a_panel,
                              const std::int8_t* b_panel,
                              const std::int32_t* colsum, std::int32_t* c,
                              std::int64_t ldc, std::int64_t rows,
                              std::int64_t cols) {
  __m512i acc0[kMR];
  __m512i acc1[kMR];
  for (std::int64_t r = 0; r < kMR; ++r) {
    acc0[r] = _mm512_setzero_si512();
    acc1[r] = _mm512_setzero_si512();
  }
  for (std::int64_t q = 0; q < kc4; ++q) {
    const __m512i b0 =
        _mm512_loadu_si512(reinterpret_cast<const void*>(b_panel + q * kNR * 4));
    const __m512i b1 = _mm512_loadu_si512(
        reinterpret_cast<const void*>(b_panel + q * kNR * 4 + 64));
    const std::uint8_t* aq = a_panel + q * kMR * 4;
    for (std::int64_t r = 0; r < kMR; ++r) {
      std::int32_t quad;
      std::memcpy(&quad, aq + r * 4, 4);
      const __m512i av = _mm512_set1_epi32(quad);
      acc0[r] = _mm512_dpbusd_epi32(acc0[r], av, b0);
      acc1[r] = _mm512_dpbusd_epi32(acc1[r], av, b1);
    }
  }
  // corr = 128 * colsum, subtracted once per C element visit (each K slice
  // packs its own colsum, so slices compose additively).
  const __m512i corr0 = _mm512_slli_epi32(
      _mm512_loadu_si512(reinterpret_cast<const void*>(colsum)), 7);
  const __m512i corr1 = _mm512_slli_epi32(
      _mm512_loadu_si512(reinterpret_cast<const void*>(colsum + 16)), 7);
  const std::uint32_t lane_mask =
      cols >= kNR ? 0xFFFFFFFFu : ((1u << cols) - 1u);
  const __mmask16 m0 = static_cast<__mmask16>(lane_mask & 0xFFFFu);
  const __mmask16 m1 = static_cast<__mmask16>(lane_mask >> 16);
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int32_t* c_row = c + r * ldc;
    const __m512i t0 = _mm512_sub_epi32(acc0[r], corr0);
    const __m512i t1 = _mm512_sub_epi32(acc1[r], corr1);
    __m512i old0 = _mm512_maskz_loadu_epi32(m0, c_row);
    __m512i old1 = _mm512_maskz_loadu_epi32(m1, c_row + 16);
    _mm512_mask_storeu_epi32(c_row, m0, _mm512_add_epi32(old0, t0));
    _mm512_mask_storeu_epi32(c_row + 16, m1, _mm512_add_epi32(old1, t1));
  }
}

#endif  // DNNV_QGEMM_VNNI

inline void micro_kernel_scalar(std::int64_t kc4, const std::uint8_t* a_panel,
                                const std::int8_t* b_panel,
                                std::int32_t* acc) {
  std::fill(acc, acc + kMR * kNR, 0);
  for (std::int64_t q = 0; q < kc4; ++q) {
    const std::uint8_t* aq = a_panel + q * kMR * 4;
    const std::int8_t* bq = b_panel + q * kNR * 4;
    for (std::int64_t t = 0; t < 4; ++t) {
      const std::int8_t* bt = bq + t * kNR;
      for (std::int64_t r = 0; r < kMR; ++r) {
        const auto ar = static_cast<std::int32_t>(
            static_cast<std::int8_t>(aq[r * 4 + t]));  // a_zero==0: raw s8
        std::int32_t* accr = acc + r * kNR;
        for (std::int64_t j = 0; j < kNR; ++j) {
          accr[j] += ar * static_cast<std::int32_t>(bt[j]);
        }
      }
    }
  }
}

/// One up-to-kMC x kNC macro-block of C (accumulating: C += A*B for this K
/// slice). a_pack/b_pack/colsum point at this block's first panel/lane.
template <bool Vnni>
inline void macro_block(std::int64_t mc, std::int64_t nc, std::int64_t kc,
                        const std::uint8_t* a_pack, const std::int8_t* b_pack,
                        const std::int32_t* colsum, std::int32_t* c,
                        std::int64_t ldc) {
  const std::int64_t kc4 = quads(kc);
  for (std::int64_t jr = 0; jr < nc; jr += kNR) {
    const std::int64_t cols = std::min(kNR, nc - jr);
    const std::int8_t* b_panel = b_pack + (jr / kNR) * kc4 * kNR * 4;
    for (std::int64_t ir = 0; ir < mc; ir += kMR) {
      const std::int64_t rows = std::min(kMR, mc - ir);
      const std::uint8_t* a_panel = a_pack + (ir / kMR) * kc4 * kMR * 4;
#if DNNV_QGEMM_VNNI
      if constexpr (Vnni) {
        micro_kernel_vnni(kc4, a_panel, b_panel, colsum + jr, c + ir * ldc + jr,
                          ldc, rows, cols);
        continue;
      }
#endif
      alignas(64) std::int32_t acc[kMR * kNR];
      micro_kernel_scalar(kc4, a_panel, b_panel, acc);
      for (std::int64_t r = 0; r < rows; ++r) {
        std::int32_t* c_row = c + (ir + r) * ldc + jr;
        const std::int32_t* acc_row = acc + r * kNR;
        for (std::int64_t j = 0; j < cols; ++j) c_row[j] += acc_row[j];
      }
      (void)colsum;
    }
  }
}

}  // namespace dnnv::quant::detail

#endif  // DNNV_QUANT_QGEMM_PANELS_H_
