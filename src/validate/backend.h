// Execution backends: the deployment targets a test suite can be replayed
// on, behind one interface.
//
// The detection harness used to exist twice — run_detection (float
// reference) and run_detection_quantized (int8 engine) carried a duplicated
// trial loop each. ExecutionBackend factors out the two backend-specific
// ingredients: which labels the user qualifies against (the clean artifact's
// own outputs) and how a worker replays the suite once the attacker has
// perturbed the float master. The detection loop, golden-label
// qualification (VendorPipeline) and suite replay are written once against
// this interface; new targets (systolic-timed, bit-flipped memory, ...)
// plug in without touching the loop.
#ifndef DNNV_VALIDATE_BACKEND_H_
#define DNNV_VALIDATE_BACKEND_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/sequential.h"
#include "quant/quant_model.h"
#include "validate/test_suite.h"

namespace dnnv::validate {

/// One deployment target. A backend instance is shared across worker
/// threads: predict_clean/golden_labels run on the caller's thread, while
/// make_replay() is invoked once per worker and must capture all mutable
/// per-worker state inside the returned closure.
class ExecutionBackend {
 public:
  /// Per-worker replay: maps the (perturbed) float master to the labels the
  /// deployed artifact produces on the suite batch captured at creation.
  using Replay = std::function<std::vector<int>(nn::Sequential& perturbed)>;

  virtual ~ExecutionBackend() = default;

  /// Registry-style name ("float", "int8", "faulty-int8", ...).
  virtual std::string name() const = 0;

  /// Labels the clean (unperturbed, fault-free) artifact produces on
  /// `batch` — the vendor's golden-label qualification step.
  virtual std::vector<int> predict_clean(const Tensor& batch) = 0;

  /// Golden labels the detection loop compares replays against. Default:
  /// the clean artifact's own outputs on the suite inputs (the user
  /// validates the shipped artifact, not the float master). `suite_batch`
  /// is the stacked suite inputs; both must outlive the call.
  virtual std::vector<int> golden_labels(const TestSuite& suite,
                                         const Tensor& suite_batch);

  /// Builds one worker's replay closure over `suite_batch` (borrowed; must
  /// outlive the closure). Thread-safe: called concurrently from workers.
  virtual Replay make_replay(const Tensor& suite_batch) const = 0;
};

/// Float reference backend: the deployed IP executes the float master
/// as-is. golden_labels() returns the suite's SHIPPED labels (the float
/// vendor qualified on the same engine), matching the historical
/// run_detection contract bit for bit.
class FloatReferenceBackend final : public ExecutionBackend {
 public:
  explicit FloatReferenceBackend(const nn::Sequential& model);

  std::string name() const override { return "float"; }
  std::vector<int> predict_clean(const Tensor& batch) override;
  std::vector<int> golden_labels(const TestSuite& suite,
                                 const Tensor& suite_batch) override;
  Replay make_replay(const Tensor& suite_batch) const override;

 private:
  nn::Sequential model_;  ///< clean clone (predict_clean only)
};

/// Int8 accelerator backend: the artifact is a quant::QuantModel with FIXED
/// activation calibration; per trial the perturbed float weights re-quantize
/// onto that calibration (the deployment update path) and the suite replays
/// on the integer engine.
class Int8Backend final : public ExecutionBackend {
 public:
  explicit Int8Backend(const quant::QuantModel& shipped);

  std::string name() const override { return "int8"; }
  std::vector<int> predict_clean(const Tensor& batch) override;
  Replay make_replay(const Tensor& suite_batch) const override;

 private:
  quant::QuantModel shipped_;  ///< clean artifact (fixed calibration)
};

/// A single stuck memory fault in the int8 weight-code store.
struct CodeFault {
  std::size_t address = 0;  ///< flat code index (param_views order)
  int bit = 7;              ///< 0..7; 7 = sign bit
};

/// Int8 backend whose deployed device carries permanent memory faults
/// (rowhammer-style bit flips baked into the weight store). Golden labels
/// stay those of the fault-FREE vendor artifact, so replays expose the
/// faults themselves as well as any attack perturbation.
class FaultInjectedInt8Backend final : public ExecutionBackend {
 public:
  FaultInjectedInt8Backend(const quant::QuantModel& shipped,
                           std::vector<CodeFault> faults);

  std::string name() const override { return "faulty-int8"; }
  /// Fault-free artifact labels (what the vendor shipped).
  std::vector<int> predict_clean(const Tensor& batch) override;
  Replay make_replay(const Tensor& suite_batch) const override;

  const std::vector<CodeFault>& faults() const { return faults_; }

 private:
  quant::QuantModel shipped_;
  std::vector<CodeFault> faults_;
};

/// XORs the configured fault bits into `model`'s weight codes (flat
/// param_views order) and rebuilds the derived execution state.
void apply_code_faults(quant::QuantModel& model,
                       const std::vector<CodeFault>& faults);

}  // namespace dnnv::validate

#endif  // DNNV_VALIDATE_BACKEND_H_
