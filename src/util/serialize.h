// Little-endian binary (de)serialisation for models and test-suite packages.
#ifndef DNNV_UTIL_SERIALIZE_H_
#define DNNV_UTIL_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dnnv {

/// Append-only byte buffer with typed writers.
class ByteWriter {
 public:
  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);          // u64 length + bytes
  void write_f32_array(const float* data, std::size_t n);
  void write_u64_array(const std::uint64_t* data, std::size_t n);
  void write_bytes(const void* data, std::size_t n);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Sequential reader over a byte buffer; throws dnnv::Error on underrun.
class ByteReader {
 public:
  explicit ByteReader(std::vector<std::uint8_t> bytes);

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  float read_f32();
  double read_f64();
  std::string read_string();
  std::vector<float> read_f32_array(std::size_t n);
  std::vector<std::uint64_t> read_u64_array(std::size_t n);
  /// Raw byte run (inverse of write_bytes with a known length).
  std::vector<std::uint8_t> read_bytes(std::size_t n);

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  void require(std::size_t n) const;

  std::vector<std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Writes a whole byte buffer to `path` (creating parent dirs); throws on failure.
void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes);

/// Reads a whole file; throws on failure.
std::vector<std::uint8_t> read_file(const std::string& path);

/// True when `path` exists and is a regular file.
bool file_exists(const std::string& path);

}  // namespace dnnv

#endif  // DNNV_UTIL_SERIALIZE_H_
